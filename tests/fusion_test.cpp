/**
 * Kernel fusion — differential correctness suite (ctest label
 * `fusion`).
 *
 * The fused keyswitch pipeline (PR 6) folds the NTT twiddle-scale
 * passes into the matrix-NTT gathers/writebacks and the ModDown
 * scalar fix into its BConv epilogue. Fusion is a pure re-assignment
 * of element-wise work to neighbouring kernels: it must never change
 * a single output bit. These tests pin that down four ways:
 *
 *   1. keyswitch_klss_pipeline with fuse on is bit-identical to the
 *      unfused pipeline and to the reference ckks::keyswitch_klss
 *      across 21 (level, d_num, engine) configurations;
 *   2. the same holds under 1 / 2 / 7 / 16 worker threads;
 *   3. the obs counters prove the element-wise passes really moved:
 *      a fused run records only "fuse.*" counters (and fewer stage
 *      spans), an unfused run only "pass.*", while the per-category
 *      span totals for ntt / bconv / gemm / ip are identical;
 *   4. the cost model agrees: with fuse_elementwise the keyswitch
 *      schedule has fewer kernels and launches, and with
 *      graph_capture on top the whole DAG replays with one launch.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ckks/keygen.h"
#include "ckks/keyswitch.h"
#include "ckks/paper_params.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "neo/kernel_model.h"
#include "neo/pipeline.h"
#include "obs/obs.h"

namespace neo {
namespace {

using namespace ckks;

bool
poly_eq(const RnsPoly &a, const RnsPoly &b)
{
    if (a.n() != b.n() || a.limbs() != b.limbs())
        return false;
    for (size_t i = 0; i < a.limbs(); ++i)
        if (!std::equal(a.limb(i), a.limb(i) + a.n(), b.limb(i)))
            return false;
    return true;
}

RnsPoly
random_eval_poly(const CkksContext &ctx, size_t level, u64 seed)
{
    Rng rng(seed);
    RnsPoly p(ctx.n(), ctx.active_mods(level), PolyForm::eval);
    for (size_t i = 0; i < p.limbs(); ++i)
        for (size_t l = 0; l < p.n(); ++l)
            p.limb(i)[l] = rng.uniform(p.modulus(i).value());
    return p;
}

/// One parameter set with its context and KLSS relinearization key.
struct ParamSet
{
    ParamSet(size_t levels, size_t d_num, u64 seed)
        : params(CkksParams::test_params(256, levels, d_num)),
          ctx(params), keygen(ctx, seed), sk(keygen.secret_key()),
          klss_rlk(keygen.to_klss(keygen.relin_key(sk)))
    {
    }

    CkksParams params;
    CkksContext ctx;
    KeyGenerator keygen;
    SecretKey sk;
    KlssEvalKey klss_rlk;
};

/// One keyswitch configuration of the differential sweep.
struct Config
{
    ParamSet *set;
    size_t level;
    const char *engine;
};

struct Fusion : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        set_a_ = new ParamSet(5, 2, 303);
        set_b_ = new ParamSet(4, 4, 404);
    }

    static void
    TearDownTestSuite()
    {
        delete set_b_;
        delete set_a_;
        set_a_ = nullptr;
        set_b_ = nullptr;
    }

    /// 21 (level, d_num, engine) configurations: 2 parameter sets ×
    /// {4, 3} levels × 3 GEMM engines.
    static std::vector<Config>
    configs()
    {
        std::vector<Config> out;
        for (size_t level : {5u, 4u, 3u, 2u})
            for (const char *eng : {"scalar", "fp64_tcu", "int8_tcu"})
                out.push_back({set_a_, level, eng});
        for (size_t level : {4u, 3u, 1u})
            for (const char *eng : {"scalar", "fp64_tcu", "int8_tcu"})
                out.push_back({set_b_, level, eng});
        return out;
    }

    static ParamSet *set_a_;
    static ParamSet *set_b_;
};

ParamSet *Fusion::set_a_ = nullptr;
ParamSet *Fusion::set_b_ = nullptr;

// ---------------------------------------------------------------------
// Differential: fused vs unfused vs reference
// ---------------------------------------------------------------------

TEST_F(Fusion, FusedKeyswitchBitIdenticalAcrossConfigs)
{
    const auto cfgs = configs();
    ASSERT_GE(cfgs.size(), 20u);
    for (const auto &cfg : cfgs) {
        SCOPED_TRACE(::testing::Message()
                     << cfg.engine << " d_num="
                     << cfg.set->params.d_num << " level=" << cfg.level);
        const EngineId engine = EngineRegistry::parse(cfg.engine);
        RnsPoly d2 = random_eval_poly(cfg.set->ctx, cfg.level,
                                      5000 + cfg.level);
        const auto ref =
            keyswitch_klss(d2, cfg.set->klss_rlk, cfg.set->ctx);
        const auto unfused = keyswitch_klss_pipeline(
            d2, cfg.set->klss_rlk, cfg.set->ctx,
            ExecPolicy::fixed(engine, /*fuse=*/false));
        const auto fused = keyswitch_klss_pipeline(
            d2, cfg.set->klss_rlk, cfg.set->ctx,
            ExecPolicy::fixed(engine, /*fuse=*/true));
        EXPECT_TRUE(poly_eq(unfused.first, ref.first));
        EXPECT_TRUE(poly_eq(unfused.second, ref.second));
        EXPECT_TRUE(poly_eq(fused.first, ref.first));
        EXPECT_TRUE(poly_eq(fused.second, ref.second));
        EXPECT_TRUE(poly_eq(fused.first, unfused.first));
        EXPECT_TRUE(poly_eq(fused.second, unfused.second));
    }
}

TEST_F(Fusion, FusedBitExactAcrossThreadCounts)
{
    const auto cfgs = configs();
    // References once, at the default thread count.
    std::vector<std::pair<RnsPoly, RnsPoly>> refs;
    std::vector<RnsPoly> inputs;
    for (const auto &cfg : cfgs) {
        inputs.push_back(random_eval_poly(cfg.set->ctx, cfg.level,
                                          6000 + cfg.level));
        refs.push_back(keyswitch_klss(inputs.back(), cfg.set->klss_rlk,
                                      cfg.set->ctx));
    }
    for (size_t threads : {1u, 2u, 7u, 16u}) {
        ThreadPool::set_global_threads(threads);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            const auto &cfg = cfgs[i];
            SCOPED_TRACE(::testing::Message()
                         << cfg.engine << " d_num="
                         << cfg.set->params.d_num << " level="
                         << cfg.level << " threads=" << threads);
            const auto got = keyswitch_klss_pipeline(
                inputs[i], cfg.set->klss_rlk, cfg.set->ctx,
                ExecPolicy::fixed(EngineRegistry::parse(cfg.engine),
                                  /*fuse=*/true));
            EXPECT_TRUE(poly_eq(got.first, refs[i].first));
            EXPECT_TRUE(poly_eq(got.second, refs[i].second));
        }
    }
    ThreadPool::set_global_threads(0); // back to NEO_NUM_THREADS
}

// ---------------------------------------------------------------------
// Counters: the element-wise passes really moved into neighbours
// ---------------------------------------------------------------------

TEST_F(Fusion, CountersProveEliminatedElementwisePasses)
{
    auto &s = *set_a_;
    const size_t level = s.ctx.max_level();
    RnsPoly d2 = random_eval_poly(s.ctx, level, 7001);

    std::map<std::string, u64, std::less<>> unfused;
    {
        obs::Scope scope;
        (void)keyswitch_klss_pipeline(
            d2, s.klss_rlk, s.ctx,
            ExecPolicy::fixed(EngineId::fp64_tcu, /*fuse=*/false));
        unfused = scope.registry().counters();
    }
    obs::Scope scope;
    (void)keyswitch_klss_pipeline(
        d2, s.klss_rlk, s.ctx,
        ExecPolicy::fixed(EngineId::fp64_tcu, /*fuse=*/true));
    const auto fused = scope.registry().counters();

    auto get = [](const auto &m, const char *k) -> u64 {
        auto it = m.find(k);
        return it == m.end() ? 0 : it->second;
    };

    // Unfused: standalone passes only. Two ModDown fixes (one per
    // ciphertext component) and one twiddle pass per MatrixNtt call.
    EXPECT_EQ(get(unfused, "pass.moddown_fix"), 2u);
    EXPECT_GT(get(unfused, "pass.ntt_twist"), 0u);
    EXPECT_EQ(get(unfused, "fuse.moddown_fix"), 0u);
    EXPECT_EQ(get(unfused, "fuse.ntt_twist"), 0u);

    // Fused: the same element-wise work rides in the neighbours —
    // every pass the unfused run launched is accounted as folded.
    EXPECT_EQ(get(fused, "fuse.moddown_fix"), 2u);
    EXPECT_EQ(get(fused, "fuse.ntt_twist"),
              get(unfused, "pass.ntt_twist"));
    EXPECT_EQ(get(fused, "pass.moddown_fix"), 0u);
    EXPECT_EQ(get(fused, "pass.ntt_twist"), 0u);

    // The fused run issues fewer kernel spans: each eliminated pass
    // was a `stage` span (ntt_twist per transform + moddown_fix × 2).
    const u64 eliminated = get(unfused, "pass.ntt_twist") + 2;
    EXPECT_EQ(get(fused, "span.stage") + eliminated,
              get(unfused, "span.stage"));

    // ...while the real kernel categories are untouched: fusion moves
    // element-wise epilogues, never transforms, conversions or GEMMs.
    for (const char *cat : {"span.ntt", "span.bconv", "span.gemm",
                            "span.ip"}) {
        SCOPED_TRACE(cat);
        EXPECT_EQ(get(fused, cat), get(unfused, cat));
    }
}

// ---------------------------------------------------------------------
// Cost model: fewer kernels, fewer launches, one graph replay
// ---------------------------------------------------------------------

TEST_F(Fusion, ModelSchedulesFewerKernelsAndLaunchesWhenFused)
{
    const auto params = ckks::paper_set('C');
    model::ModelConfig off;
    model::ModelConfig on;
    on.fuse_elementwise = true;
    const model::KernelModel m_off(params, off);
    const model::KernelModel m_on(params, on);

    for (size_t level : {params.max_level, size_t{20}, size_t{5}}) {
        SCOPED_TRACE(::testing::Message() << "level=" << level);
        const auto k_off = m_off.keyswitch_kernels_named(level);
        const auto k_on = m_on.keyswitch_kernels_named(level);
        // The ModDown fix kernel disappears outright.
        EXPECT_LT(k_on.size(), k_off.size());

        const auto a_off = m_off.run_attributed(k_off);
        const auto a_on = m_on.run_attributed(k_on);
        EXPECT_LT(a_on.schedule.launches, a_off.schedule.launches);
        EXPECT_EQ(a_off.fused_kernels, 0u);
        EXPECT_GT(a_on.fused_kernels, 0u);
        // Fusion also trims the intermediate's DRAM round trip, so the
        // fused schedule is strictly cheaper.
        EXPECT_LT(a_on.seconds, a_off.seconds);
    }
}

TEST_F(Fusion, GraphCaptureReplaysScheduleWithOneLaunch)
{
    const auto params = ckks::paper_set('C');
    model::ModelConfig cfg;
    cfg.fuse_elementwise = true;
    cfg.graph_capture = true;
    const model::KernelModel m(params, cfg);
    model::ModelConfig nograph = cfg;
    nograph.graph_capture = false;
    const model::KernelModel m_ng(params, nograph);

    const auto att =
        m.run_attributed(m.keyswitch_kernels_named(params.max_level));
    const auto att_ng = m_ng.run_attributed(
        m_ng.keyswitch_kernels_named(params.max_level));

    // ISSUE acceptance: launches collapse to ≤ 2 and the schedule is
    // no longer launch-bound.
    EXPECT_EQ(att.schedule.launches, 1.0);
    EXPECT_EQ(att.schedule.graph_launches, 1.0);
    EXPECT_EQ(att.schedule.captured_launches,
              att_ng.schedule.launches);
    EXPECT_NE(att.schedule.bound(), gpusim::Bound::launch);
    EXPECT_LT(att.seconds, att_ng.seconds);
}

} // namespace
} // namespace neo
