#include <gtest/gtest.h>

#include "gpusim/event_sim.h"
#include "gpusim/kernel_cost.h"
#include "gpusim/tcu_model.h"

namespace neo::gpusim {
namespace {

TEST(DeviceSpec, DatasheetNumbers)
{
    auto d = DeviceSpec::a100();
    // §2.3: CUDA FP64 9.7 TFLOPS, TCU FP64 19.5 TFLOPS (2x), INT8 TCU
    // 624 TOPS.
    EXPECT_DOUBLE_EQ(d.fp64_cuda_flops, 9.7e12);
    EXPECT_DOUBLE_EQ(d.fp64_tcu_flops, 19.5e12);
    EXPECT_NEAR(d.fp64_tcu_flops / d.fp64_cuda_flops, 2.0, 0.02);
    EXPECT_DOUBLE_EQ(d.int8_tcu_ops, 624e12);
    EXPECT_DOUBLE_EQ(d.hbm_bandwidth, 1555e9);
    EXPECT_EQ(d.num_sms, 108);
}

TEST(DeviceSpec, DerivedRatesPositiveAndOrdered)
{
    auto d = DeviceSpec::a100();
    EXPECT_GT(d.modmul_rate(), 0);
    EXPECT_GT(d.modadd_rate(), d.modmul_rate()); // adds cheaper
    EXPECT_GT(d.tcu_fp64_fma_rate(), 0);
    EXPECT_GT(d.tcu_int8_mac_rate(), d.tcu_fp64_fma_rate());
    EXPECT_GT(d.mem_rate(), 0);
    EXPECT_LT(d.mem_rate(), d.hbm_bandwidth);
}

TEST(TcuModel, PaddedMacsRoundsUpToFragments)
{
    // FP64 fragment is 8x8x4.
    EXPECT_EQ(TcuModel::padded_macs(8, 8, 4, kFp64Fragment), 256u);
    EXPECT_EQ(TcuModel::padded_macs(1, 1, 1, kFp64Fragment), 256u);
    EXPECT_EQ(TcuModel::padded_macs(16, 8, 4, kFp64Fragment), 512u);
    EXPECT_EQ(TcuModel::padded_macs(9, 9, 5, kFp64Fragment),
              16u * 16 * 8);
}

TEST(TcuModel, ValidProportionPaperValues)
{
    // Fig 11: BConv (M huge, N=α'=8, K=α=4): FP64 100%, INT8 25%.
    EXPECT_DOUBLE_EQ(TcuModel::valid_proportion_fp64(1 << 20, 8, 4), 1.0);
    EXPECT_DOUBLE_EQ(TcuModel::valid_proportion_int8(1 << 20, 8, 4), 0.25);
    // NTT 16x16 tiles: both aligned on FP64.
    EXPECT_DOUBLE_EQ(TcuModel::valid_proportion_fp64(1 << 20, 16, 16),
                     1.0);
}

TEST(TcuModel, ValidProportionNeverExceedsOne)
{
    for (size_t m : {1u, 7u, 8u, 100u})
        for (size_t n : {1u, 5u, 8u, 16u})
            for (size_t k : {1u, 3u, 4u, 16u}) {
                double v = TcuModel::valid_proportion_fp64(m, n, k);
                EXPECT_GT(v, 0);
                EXPECT_LE(v, 1.0);
            }
}

TEST(TcuModel, GemmTimesScaleWithWork)
{
    TcuModel t(DeviceSpec::a100());
    EXPECT_LT(t.fp64_gemm_time(1 << 10, 16, 16, 36, 36),
              t.fp64_gemm_time(1 << 12, 16, 16, 36, 36));
    // Wider words need more plane products.
    EXPECT_LT(t.fp64_gemm_time(1 << 10, 16, 16, 36, 36),
              t.fp64_gemm_time(1 << 10, 16, 16, 48, 48));
    EXPECT_GT(t.cuda_gemm_time(1 << 10, 16, 16), 0);
}

TEST(KernelCost, AccumulateAndRoofline)
{
    auto d = DeviceSpec::a100();
    KernelCost compute;
    compute.cuda_modmul = 1e9;
    compute.bytes_read = 1e3; // negligible memory
    KernelCost memory;
    memory.bytes_read = 1e10; // negligible compute
    memory.cuda_modmul = 1;

    // Compute-bound kernel: time tracks the modmul rate.
    EXPECT_NEAR(compute.time(d), 1e9 / d.modmul_rate() +
                                     d.kernel_launch_s,
                1e-9);
    // Memory-bound kernel: time tracks bandwidth.
    EXPECT_NEAR(memory.time(d), 1e10 / d.mem_rate() + d.kernel_launch_s,
                1e-6);

    KernelCost sum = compute + memory;
    EXPECT_DOUBLE_EQ(sum.cuda_modmul, compute.cuda_modmul + 1);
    EXPECT_DOUBLE_EQ(sum.bytes(), 1e10 + 1e3 + 0);
    EXPECT_DOUBLE_EQ(sum.launches, 2);
}

TEST(KernelCost, OverlapReducesMixedKernelTime)
{
    auto d = DeviceSpec::a100();
    KernelCost k;
    k.cuda_modmul = 1e9;
    k.tcu_fp64_macs = 5e9;
    const double serial = k.time(d, false);
    const double overlapped = k.time(d, true);
    EXPECT_LT(overlapped, serial);
    // Overlap floor: the max of the two phases.
    EXPECT_GE(overlapped,
              std::max(k.cuda_time(d), k.tcu_time(d)));
}

TEST(RunSchedule, MultistreamOverlapsResources)
{
    auto d = DeviceSpec::a100();
    KernelCost cuda_kernel;
    cuda_kernel.cuda_modmul = 1e9;
    KernelCost tcu_kernel;
    tcu_kernel.tcu_fp64_macs = 5e9;
    std::vector<KernelCost> ks = {cuda_kernel, tcu_kernel};

    auto serial = run_schedule(ks, d, false);
    auto streamed = run_schedule(ks, d, true);
    EXPECT_LT(streamed.seconds, serial.seconds);
    EXPECT_DOUBLE_EQ(serial.bytes, streamed.bytes);
    EXPECT_DOUBLE_EQ(serial.launches, 2);
}

TEST(EventSim, SingleStreamSerializes)
{
    auto d = DeviceSpec::a100();
    EventSimulator sim(d);
    KernelCost k;
    k.cuda_modmul = 1e9;
    std::vector<SimKernel> ks = {{k, 0, {}}, {k, 0, {}}, {k, 0, {}}};
    auto r = sim.run(ks);
    EXPECT_NEAR(r.makespan, 3 * k.time(d), 3 * k.time(d) * 1e-6);
    EXPECT_LT(r.finish[0], r.finish[1]);
    EXPECT_LT(r.finish[1], r.finish[2]);
}

TEST(EventSim, TwoStreamsOverlapDisjointResources)
{
    // A TCU-heavy and a CUDA-heavy kernel on different streams should
    // overlap almost perfectly — the §4.6 multi-stream effect.
    auto d = DeviceSpec::a100();
    EventSimulator sim(d);
    KernelCost cuda;
    cuda.cuda_modmul = 1e9;
    cuda.launches = 0;
    KernelCost tcu;
    tcu.tcu_fp64_macs = 1e9 * d.tcu_fp64_fma_rate() / d.modmul_rate();
    tcu.launches = 0;
    auto r = sim.run({{cuda, 0, {}}, {tcu, 1, {}}});
    const double each = cuda.time(d) - d.kernel_launch_s * 0; // equal
    EXPECT_NEAR(r.makespan, each, each * 0.05);
}

TEST(EventSim, SameResourceKernelsShareRate)
{
    auto d = DeviceSpec::a100();
    EventSimulator sim(d);
    KernelCost k;
    k.cuda_modmul = 1e9;
    k.launches = 0;
    auto r = sim.run({{k, 0, {}}, {k, 1, {}}});
    // Two equal kernels sharing one resource: makespan = 2x one.
    EXPECT_NEAR(r.makespan, 2 * k.cuda_time(d), k.cuda_time(d) * 0.01);
}

TEST(EventSim, DependenciesForceSerialization)
{
    auto d = DeviceSpec::a100();
    EventSimulator sim(d);
    KernelCost cuda;
    cuda.cuda_modmul = 1e9;
    KernelCost tcu;
    tcu.tcu_fp64_macs = 1e9;
    // Same as the overlap test, but stream 1 depends on stream 0.
    auto free_run = sim.run({{cuda, 0, {}}, {tcu, 1, {}}});
    auto chained = sim.run({{cuda, 0, {}}, {tcu, 1, {0}}});
    EXPECT_GT(chained.makespan, free_run.makespan * 1.2);
    EXPECT_NEAR(chained.makespan, cuda.time(d) + tcu.time(d),
                (cuda.time(d) + tcu.time(d)) * 1e-6);
}

TEST(EventSim, BracketsAggregateModel)
{
    // For a mixed kernel set, the fluid makespan must lie between the
    // ideal-overlap bound and the fully serial sum.
    auto d = DeviceSpec::a100();
    EventSimulator sim(d);
    std::vector<SimKernel> ks;
    std::vector<KernelCost> costs;
    for (int i = 0; i < 6; ++i) {
        KernelCost k;
        k.cuda_modmul = (i % 2) ? 4e8 : 1e8;
        k.tcu_fp64_macs = (i % 2) ? 2e8 : 9e8;
        k.bytes_read = 1e8;
        ks.push_back({k, i % 2, {}});
        costs.push_back(k);
    }
    auto fluid = sim.run(ks).makespan;
    auto serial = run_schedule(costs, d, false).seconds;
    auto ideal = run_schedule(costs, d, true).seconds;
    EXPECT_LE(fluid, serial * 1.0001);
    EXPECT_GE(fluid, ideal * 0.9999);
}

TEST(EventSim, RejectsBadDependencyIndex)
{
    auto d = DeviceSpec::a100();
    EventSimulator sim(d);
    KernelCost k;
    k.cuda_modmul = 1;
    EXPECT_THROW(sim.run({{k, 0, {5}}}), std::invalid_argument);
}

TEST(RunSchedule, EmptyScheduleIsFree)
{
    auto d = DeviceSpec::a100();
    auto r = run_schedule({}, d, true);
    EXPECT_DOUBLE_EQ(r.seconds, 0);
    EXPECT_DOUBLE_EQ(r.bytes, 0);
}

} // namespace
} // namespace neo::gpusim
