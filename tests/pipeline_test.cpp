#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "neo/kernels.h"
#include "neo/pipeline.h"
#include "rns/primes.h"

namespace neo {
namespace {

using namespace ckks;

struct PipelineFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(256, 5, 2));
        ctx_ = new CkksContext(*params_);
        keygen_ = new KeyGenerator(*ctx_, 17);
        sk_ = new SecretKey(keygen_->secret_key());
        rlk_ = new EvalKey(keygen_->relin_key(*sk_));
        klss_rlk_ = new KlssEvalKey(keygen_->to_klss(*rlk_));
    }

    static void
    TearDownTestSuite()
    {
        delete klss_rlk_;
        delete rlk_;
        delete sk_;
        delete keygen_;
        delete ctx_;
        delete params_;
    }

    static RnsPoly
    random_eval_poly(size_t level, u64 seed)
    {
        Rng rng(seed);
        RnsPoly p(ctx_->n(), ctx_->active_mods(level), PolyForm::eval);
        for (size_t i = 0; i < p.limbs(); ++i)
            for (size_t l = 0; l < p.n(); ++l)
                p.limb(i)[l] = rng.uniform(p.modulus(i).value());
        return p;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static EvalKey *rlk_;
    static KlssEvalKey *klss_rlk_;
};

CkksParams *PipelineFixture::params_ = nullptr;
CkksContext *PipelineFixture::ctx_ = nullptr;
KeyGenerator *PipelineFixture::keygen_ = nullptr;
SecretKey *PipelineFixture::sk_ = nullptr;
EvalKey *PipelineFixture::rlk_ = nullptr;
KlssEvalKey *PipelineFixture::klss_rlk_ = nullptr;

TEST_F(PipelineFixture, BitExactAgainstReferenceScalarEngines)
{
    for (size_t level : {5u, 4u, 2u}) {
        RnsPoly d2 = random_eval_poly(level, 100 + level);
        auto [r0, r1] = keyswitch_klss(d2, *klss_rlk_, *ctx_);
        auto [p0, p1] = keyswitch_klss_pipeline(
            d2, *klss_rlk_, *ctx_, ExecPolicy::fixed(EngineId::scalar));
        EXPECT_TRUE(std::equal(r0.data(), r0.data() + r0.limbs() * r0.n(),
                               p0.data()))
            << "level " << level;
        EXPECT_TRUE(std::equal(r1.data(), r1.data() + r1.limbs() * r1.n(),
                               p1.data()));
    }
}

TEST_F(PipelineFixture, BitExactThroughEmulatedFp64TensorCore)
{
    // The paper's headline functional claim: routing every matrix
    // stage through the bit-sliced FP64 datapath changes nothing.
    RnsPoly d2 = random_eval_poly(5, 7);
    auto [r0, r1] = keyswitch_klss(d2, *klss_rlk_, *ctx_);
    auto [p0, p1] = keyswitch_klss_pipeline(
        d2, *klss_rlk_, *ctx_, ExecPolicy::fixed(EngineId::fp64_tcu));
    EXPECT_TRUE(std::equal(r0.data(), r0.data() + r0.limbs() * r0.n(),
                           p0.data()));
    EXPECT_TRUE(std::equal(r1.data(), r1.data() + r1.limbs() * r1.n(),
                           p1.data()));
}

TEST_F(PipelineFixture, HmultThroughPipelineDecryptsCorrectly)
{
    PublicKey pk = keygen_->public_key(*sk_);
    Encryptor enc(*ctx_, 23);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);

    Rng rng(9);
    std::vector<Complex> a(ctx_->encoder().slot_count());
    std::vector<Complex> b(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = Complex(2 * rng.uniform_real() - 1, 0);
        b[i] = Complex(2 * rng.uniform_real() - 1, 0);
    }
    auto ca = enc.encrypt(ctx_->encode(a, 5), pk);
    auto cb = enc.encrypt(ctx_->encode(b, 5), pk);

    // HMULT with the key switch replaced by the Neo pipeline.
    RnsPoly d0 = ca.c0;
    d0.mul_inplace(cb.c0);
    RnsPoly d1 = ca.c0;
    d1.mul_inplace(cb.c1);
    RnsPoly t = ca.c1;
    t.mul_inplace(cb.c0);
    d1.add_inplace(t);
    RnsPoly d2 = ca.c1;
    d2.mul_inplace(cb.c1);
    auto [k0, k1] = keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_);
    d0.add_inplace(k0);
    d1.add_inplace(k1);
    Ciphertext prod{std::move(d0), std::move(d1), 5,
                    ca.scale * cb.scale};
    auto got = dec.decrypt_decode(ev.rescale(prod));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(got[i] - a[i] * b[i]), 1e-4) << "slot " << i;
}

TEST(BConvExact, MatmulExactMatchesBaseConverter)
{
    auto p1 = generate_ntt_primes(36, 3, 1 << 10);
    auto p2 = generate_ntt_primes(48, 5, 1 << 10);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);
    BaseConverter conv(from, to);

    const size_t n = 64, batch = 2;
    Rng rng(3);
    std::vector<u64> in(3 * batch * n);
    for (size_t i = 0; i < 3; ++i)
        for (size_t x = 0; x < batch * n; ++x)
            in[i * batch * n + x] = rng.uniform(p1[i]);

    std::vector<u64> got(5 * batch * n);
    kernel.run_matmul_exact(in.data(), batch, n, got.data());

    // Reference: convert each batch element separately.
    for (size_t b = 0; b < batch; ++b) {
        std::vector<u64> one(3 * n), want(5 * n);
        for (size_t i = 0; i < 3; ++i)
            std::copy(in.begin() + (i * batch + b) * n,
                      in.begin() + (i * batch + b + 1) * n,
                      one.begin() + i * n);
        conv.convert_exact(one.data(), n, want.data());
        for (size_t j = 0; j < 5; ++j)
            for (size_t l = 0; l < n; ++l)
                EXPECT_EQ(got[(j * batch + b) * n + l], want[j * n + l])
                    << "b=" << b << " j=" << j << " l=" << l;
    }
}

TEST(BConvExact, Fp64EngineIdenticalToScalar)
{
    auto p1 = generate_ntt_primes(36, 4, 1 << 10);
    auto p2 = generate_ntt_primes(48, 6, 1 << 10);
    RnsBasis from(p1), to(p2);
    BConvKernel kernel(from, to);
    const size_t n = 32, batch = 3;
    Rng rng(4);
    std::vector<u64> in(4 * batch * n);
    for (size_t i = 0; i < 4; ++i)
        for (size_t x = 0; x < batch * n; ++x)
            in[i * batch * n + x] = rng.uniform(p1[i]);
    std::vector<u64> a(6 * batch * n), b(6 * batch * n);
    kernel.run_matmul_exact(in.data(), batch, n, a.data(),
                            scalar_col_matmul());
    kernel.run_matmul_exact(in.data(), batch, n, b.data(),
                            fp64_tcu_col_matmul());
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace neo
