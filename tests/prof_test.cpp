/**
 * neo::prof — the roofline profiler's contracts:
 *  - per-kernel rows decompose the modeled total exactly,
 *  - the functional keyswitch run's traced spans equal the analytic
 *    kernel counts (JSON totals == obs counters),
 *  - the artifact matches the committed golden file
 *    (tests/data/prof_report_golden.json),
 *  - compare() gates regressions / dropped metrics and skips wall
 *    time,
 *  - diff() attributes the delta between two artifacts per kernel and
 *    reproduces tests/data/prof_diff_golden.json byte for byte, and
 *  - the neo-prof CLI exits nonzero against a perturbed baseline and
 *    honours the --diff exit-code contract (0 clean / 1 gated /
 *    2 usage).
 */
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "common/json.h"
#include "prof/prof.h"

using namespace neo;

namespace {

double
rows_sum(const prof::Result &r)
{
    double s = 0;
    for (const auto &k : r.kernels)
        s += k.modeled_s;
    return s;
}

json::Value
artifact(const prof::Result &r)
{
    return json::Value::parse(prof::to_json(r));
}

/// metrics object -> flat map for test-side diffing.
std::map<std::string, double>
metric_map(const json::Value &doc)
{
    std::map<std::string, double> m;
    for (const auto &[k, v] : doc.at("metrics").as_object())
        m[k] = v.as_number();
    return m;
}

} // namespace

TEST(ProfModel, RowsSumToModeledTotal)
{
    for (const char *workload : {"mul", "rotate", "bootstrap"}) {
        for (const EngineId engine : EngineRegistry::ids()) {
            const auto name = EngineRegistry::name(engine);
            const auto r =
                prof::profile(workload, ExecPolicy::fixed(engine));
            ASSERT_FALSE(r.kernels.empty()) << workload << "/" << name;
            EXPECT_NEAR(rows_sum(r), r.modeled_total_s,
                        1e-9 * r.modeled_total_s)
                << workload << "/" << name;
            double frac = 0;
            for (const auto &k : r.kernels) {
                frac += k.fraction;
                EXPECT_TRUE(k.bound == "compute" || k.bound == "memory" ||
                            k.bound == "launch")
                    << k.name;
            }
            EXPECT_NEAR(frac, 1.0, 1e-9);
        }
    }
}

TEST(ProfModel, EnginesProduceDistinctTotals)
{
    const auto fp64 =
        prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu));
    const auto scalar =
        prof::profile("mul", ExecPolicy::fixed(EngineId::scalar));
    const auto int8 =
        prof::profile("mul", ExecPolicy::fixed(EngineId::int8_tcu));
    EXPECT_NE(fp64.modeled_total_s, scalar.modeled_total_s);
    EXPECT_NE(fp64.modeled_total_s, int8.modeled_total_s);
}

TEST(ProfModel, UnknownNamesThrow)
{
    EXPECT_THROW(prof::profile("nope", ExecPolicy{}),
                 std::invalid_argument);
    EXPECT_THROW(EngineRegistry::parse("warp_tcu"),
                 std::invalid_argument);
    // The deprecated engine-string surface must keep validating both
    // axes until it is removed (one deliberate deprecated call).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EXPECT_THROW(prof::profile("nope", "fp64_tcu"),
                 std::invalid_argument);
    EXPECT_THROW(prof::profile("mul", "warp_tcu"), std::invalid_argument);
#pragma GCC diagnostic pop
}

TEST(ProfKeyswitch, SpansMatchAnalyticCountsAndObsCounters)
{
    const auto r = prof::profile("keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu));
    EXPECT_EQ(r.mode, "functional");
    ASSERT_FALSE(r.expected_spans.empty());
    for (const auto &[name, want] : r.expected_spans) {
        const auto it = r.spans.find("span." + name);
        ASSERT_NE(it, r.spans.end()) << "span." << name;
        EXPECT_EQ(it->second, want) << "span." << name;
    }
    // The GEMM counter (bumped per emulated matmul) agrees with the
    // span count, tying the artifact to the obs registry totals.
    ASSERT_TRUE(r.spans.count("gemm.calls"));
    EXPECT_EQ(r.spans.at("gemm.calls"), r.expected_spans.at("gemm"));
    EXPECT_GT(r.wall_s, 0.0);
    EXPECT_NEAR(rows_sum(r), r.modeled_total_s,
                1e-9 * r.modeled_total_s);
}

TEST(ProfArtifact, JsonCarriesSchemaAndTotals)
{
    const auto r = prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu));
    const auto doc = artifact(r);
    EXPECT_EQ(doc.at("schema").as_string(), prof::kSchema);
    EXPECT_EQ(doc.at("kind").as_string(), "profile");
    EXPECT_EQ(doc.at("workload").as_string(), "mul");
    EXPECT_EQ(doc.at("engine").as_string(), "fp64_tcu");
    EXPECT_DOUBLE_EQ(doc.at("totals").at("modeled_s").as_number(),
                     r.modeled_total_s);
    const auto &kernels = doc.at("kernels").as_array();
    ASSERT_EQ(kernels.size(), r.kernels.size());
    double sum = 0;
    for (const auto &k : kernels)
        sum += k.at("modeled_s").as_number();
    EXPECT_NEAR(sum, doc.at("totals").at("modeled_s").as_number(),
                1e-9 * r.modeled_total_s);
    // The flat metrics mirror the structured totals.
    const auto m = metric_map(doc);
    EXPECT_DOUBLE_EQ(m.at("modeled.total_s"), r.modeled_total_s);
    EXPECT_DOUBLE_EQ(m.at("bytes.total"), r.bytes);
}

TEST(ProfArtifact, MatchesGoldenFile)
{
    const auto golden = json::Value::parse_file(
        std::string(NEO_TEST_DATA_DIR) + "/prof_report_golden.json");
    const auto cur = artifact(prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu)));
    EXPECT_EQ(cur.at("schema").as_string(),
              golden.at("schema").as_string());
    EXPECT_EQ(cur.at("workload").as_string(),
              golden.at("workload").as_string());
    const auto want = metric_map(golden);
    const auto got = metric_map(cur);
    ASSERT_EQ(got.size(), want.size());
    for (const auto &[k, v] : want) {
        ASSERT_TRUE(got.count(k)) << k;
        EXPECT_NEAR(got.at(k), v, 1e-9 * std::abs(v) + 1e-15) << k;
    }
}

TEST(ProfOptions, FusedProfileFoldsModdownRows)
{
    const auto off = prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu));
    const auto on = prof::profile(
        "keyswitch",
        ExecPolicy::fixed(EngineId::fp64_tcu, /*fuse=*/true));

    auto has_row = [](const prof::Result &r, const char *name) {
        for (const auto &k : r.kernels)
            if (k.name == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has_row(off, "moddown_fix"));
    EXPECT_TRUE(has_row(off, "moddown_bconv"));
    EXPECT_FALSE(has_row(off, "moddown_fused"));
    EXPECT_TRUE(has_row(on, "moddown_fused"));
    EXPECT_FALSE(has_row(on, "moddown_fix"));

    EXPECT_EQ(off.fused_kernels, 0u);
    EXPECT_GT(on.fused_kernels, 0u);
    EXPECT_LT(on.launches, off.launches);
    EXPECT_LT(on.modeled_total_s, off.modeled_total_s);
    // Fusion is an accounting change, not a precision change: the
    // functional pipeline underneath stays bit-identical, so the rows
    // still decompose the total exactly.
    EXPECT_NEAR(rows_sum(on), on.modeled_total_s,
                1e-9 * on.modeled_total_s);
}

TEST(ProfOptions, GraphCaptureRemovesLaunchBound)
{
    const auto off = prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu));
    const auto on = prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu,
                                       /*fuse=*/true, /*graph=*/true));

    // ISSUE acceptance: one graph replay instead of 12 per-kernel
    // launches, and the schedule is no longer launch-bound.
    EXPECT_EQ(on.launches, 1.0);
    EXPECT_EQ(on.graph_launches, 1.0);
    EXPECT_GT(off.launches, 2.0);
    EXPECT_EQ(off.graph_launches, 0.0);
    EXPECT_NE(on.bound, "launch");
    EXPECT_LT(on.modeled_total_s, off.modeled_total_s);
    // Per-row attribution re-prices launches at the effective graph
    // rate (schedule launch seconds spread over the captured nodes)
    // but still sums to the schedule total.
    EXPECT_NEAR(rows_sum(on), on.modeled_total_s,
                1e-9 * on.modeled_total_s);
    double on_launch = 0, off_launch = 0;
    for (const auto &k : on.kernels)
        on_launch += k.launch_s;
    for (const auto &k : off.kernels)
        off_launch += k.launch_s;
    EXPECT_LT(on_launch / on.modeled_total_s,
              off_launch / off.modeled_total_s);
}

TEST(ProfOptions, ArtifactCarriesOptionsAndNewTotals)
{
    const auto r = prof::profile(
        "mul", ExecPolicy::fixed(EngineId::fp64_tcu, /*fuse=*/true,
                                 /*graph=*/true));
    const auto doc = artifact(r);
    // The neo.bench/1 schema is extended, not broken: same schema id,
    // new totals fields, and an options block recording the axes.
    EXPECT_EQ(doc.at("schema").as_string(), prof::kSchema);
    EXPECT_TRUE(doc.at("options").at("fuse").as_bool());
    EXPECT_TRUE(doc.at("options").at("graph").as_bool());
    EXPECT_DOUBLE_EQ(doc.at("totals").at("graph_launches").as_number(),
                     r.graph_launches);
    EXPECT_DOUBLE_EQ(doc.at("totals").at("fused_kernels").as_number(),
                     static_cast<double>(r.fused_kernels));
    EXPECT_EQ(doc.at("totals").at("launches").as_number(), 1.0);
}

TEST(ProfSharded, ArtifactCarriesDevicesCommAndPerLinkRows)
{
    ExecPolicy p = ExecPolicy::fixed(EngineId::fp64_tcu,
                                     /*fuse=*/true, /*graph=*/true);
    p.devices = 2;
    p.interconnect = gpusim::Interconnect::nvlink;
    const auto r = prof::profile("keyswitch", p);
    EXPECT_EQ(r.devices, 2u);
    EXPECT_EQ(r.topology, "nvlink");
    // Per-device rows: one per device, their compute+comm shares
    // matching the totals the metrics gate on.
    ASSERT_EQ(r.per_device.size(), 2u);
    // nvlink(2) is fully connected: n(n-1) directed links.
    ASSERT_EQ(r.links.size(), 2u);
    for (const auto &lk : r.links) {
        EXPECT_GT(lk.bytes, 0.0);
        EXPECT_GT(lk.busy_s, 0.0);
        EXPECT_GT(lk.utilization, 0.0);
    }
    const auto doc = artifact(r);
    EXPECT_EQ(doc.at("devices").as_number(), 2.0);
    EXPECT_EQ(doc.at("topology").as_string(), "nvlink");
    ASSERT_EQ(doc.at("per_device").as_array().size(), 2u);
    ASSERT_EQ(doc.at("links").as_array().size(), 2u);
    const auto m = metric_map(doc);
    EXPECT_GT(m.at("comm.bytes.total"), 0.0);
    EXPECT_GT(m.at("comm.modeled.s"), 0.0);
    EXPECT_GT(m.at("modeled.single_device.s"), 0.0);
    // comm rows ride the kernel table, so --diff attributes them.
    bool comm_row = false;
    for (const auto &k : r.kernels)
        comm_row |= k.name.rfind("comm.", 0) == 0;
    EXPECT_TRUE(comm_row);
}

TEST(ProfSharded, SingleDeviceArtifactOmitsShardKeys)
{
    // Historical artifacts must stay byte-identical: no devices /
    // topology / per_device / links keys and no comm.* metrics
    // without --devices > 1.
    const auto doc = artifact(prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu)));
    EXPECT_EQ(doc.find("devices"), nullptr);
    EXPECT_EQ(doc.find("topology"), nullptr);
    EXPECT_EQ(doc.find("per_device"), nullptr);
    EXPECT_EQ(doc.find("links"), nullptr);
    for (const auto &[k, v] : doc.at("metrics").as_object())
        EXPECT_NE(k.rfind("comm.", 0), 0u) << k;
}

TEST(ProfArtifact, MatchesFusedGoldenFile)
{
    // Same contract as MatchesGoldenFile, for the fuse+graph artifact:
    // the metric map must match tests/data/prof_report_fused_golden.json
    // key-for-key. The old golden (unfused) is still compared by
    // MatchesGoldenFile above, so both schema generations stay pinned.
    const auto golden = json::Value::parse_file(
        std::string(NEO_TEST_DATA_DIR) + "/prof_report_fused_golden.json");
    const auto cur = artifact(prof::profile(
        "mul", ExecPolicy::fixed(EngineId::fp64_tcu, /*fuse=*/true,
                                 /*graph=*/true)));
    EXPECT_EQ(cur.at("schema").as_string(),
              golden.at("schema").as_string());
    EXPECT_EQ(cur.at("workload").as_string(),
              golden.at("workload").as_string());
    EXPECT_TRUE(golden.at("options").at("fuse").as_bool());
    EXPECT_TRUE(golden.at("options").at("graph").as_bool());
    const auto want = metric_map(golden);
    const auto got = metric_map(cur);
    ASSERT_EQ(got.size(), want.size());
    for (const auto &[k, v] : want) {
        ASSERT_TRUE(got.count(k)) << k;
        EXPECT_NEAR(got.at(k), v, 1e-9 * std::abs(v) + 1e-15) << k;
    }
    // The PR 3 parser contract: compare() accepts the extended
    // artifact on both sides.
    EXPECT_TRUE(prof::compare(golden, cur).empty());
}

TEST(ProfCompare, SelfCompareIsClean)
{
    const auto doc = artifact(prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu)));
    EXPECT_TRUE(prof::compare(doc, doc).empty());
}

TEST(ProfCompare, DetectsInjectedRegression)
{
    const auto r = prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu));
    const auto cur = artifact(r);
    // Baseline with every metric 20% lower than current -> everything
    // regresses past the default 10% threshold.
    auto shrunk = r;
    for (auto &[k, v] : shrunk.metrics)
        v /= 1.2;
    const auto base = artifact(shrunk);
    const auto regs = prof::compare(base, cur);
    EXPECT_EQ(regs.size(), shrunk.metrics.size());
    for (const auto &reg : regs)
        EXPECT_NEAR(reg.ratio, 1.2, 1e-9);
    // A 20% threshold tolerates the same delta.
    prof::CompareOptions loose;
    loose.threshold = 0.25;
    EXPECT_TRUE(prof::compare(base, cur, loose).empty());
}

TEST(ProfCompare, MissingMetricIsARegression)
{
    auto r = prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu));
    const auto base = artifact(r);
    r.metrics.erase("bytes.total");
    const auto cur = artifact(r);
    const auto regs = prof::compare(base, cur);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].metric, "bytes.total");
    EXPECT_EQ(regs[0].ratio, 0.0);
}

TEST(ProfCompare, WallTimeSkippedUnlessGated)
{
    auto slow = prof::profile("keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu));
    auto fast = slow;
    fast.wall_s = slow.wall_s / 100.0;
    fast.metrics["wall.total_s"] = fast.wall_s;
    // Machine noise on the wall clock must not gate by default...
    EXPECT_TRUE(prof::compare(artifact(fast), artifact(slow)).empty());
    // ...but can be opted into.
    prof::CompareOptions gated;
    gated.gate_wall = true;
    const auto regs = prof::compare(artifact(fast), artifact(slow), gated);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].metric, "wall.total_s");
}

TEST(ProfDist, RepeatEmitsDistSubObject)
{
    const auto r = prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu), 0,
        /*repeat=*/3);
    ASSERT_TRUE(r.dist.count("wall.total_s"));
    const prof::Dist &d = r.dist.at("wall.total_s");
    // The median sample is both the headline wall time and the p50.
    EXPECT_EQ(d.p50, r.wall_s);
    EXPECT_LE(d.p50, d.p95);
    EXPECT_LE(d.p95, d.max);
    EXPECT_GT(d.p50, 0.0);
    const auto doc = artifact(r);
    const json::Value *dist = doc.find("dist");
    ASSERT_NE(dist, nullptr);
    EXPECT_DOUBLE_EQ(
        dist->at("wall.total_s").at("p95").as_number(), d.p95);
}

TEST(ProfDist, SingleRunArtifactOmitsDistKey)
{
    // repeat == 1 must keep the historical key set byte for byte.
    const auto r = prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu));
    EXPECT_TRUE(r.dist.empty());
    EXPECT_EQ(artifact(r).find("dist"), nullptr);
    EXPECT_EQ(prof::to_json(r).find("\"dist\""), std::string::npos);
}

namespace {

json::Value
diff_fixture(const char *name)
{
    return json::Value::parse_file(std::string(NEO_TEST_DATA_DIR) + "/" +
                                   name);
}

} // namespace

TEST(ProfDiff, SelfDiffIsCleanAndFullyAttributed)
{
    const auto doc = artifact(
        prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu)));
    const auto d = prof::diff(doc, doc);
    EXPECT_FALSE(d.gated());
    EXPECT_TRUE(d.spans.empty());
    EXPECT_TRUE(d.metrics.empty());
    ASSERT_FALSE(d.kernels.empty()); // every kernel listed, all flat
    for (const auto &k : d.kernels) {
        EXPECT_EQ(k.delta, 0.0) << k.name;
        EXPECT_EQ(k.ratio, 1.0) << k.name;
    }
}

TEST(ProfDiff, AttributesDeltaAcrossKernelUnion)
{
    // fuse off vs on changes the kernel set (moddown_fix/_bconv fold
    // into moddown_fused): the diff must cover the union and its
    // kernel shares must decompose the total movement exactly.
    const auto base = artifact(prof::profile(
        "keyswitch", ExecPolicy::fixed(EngineId::fp64_tcu)));
    const auto cur = artifact(prof::profile(
        "keyswitch",
        ExecPolicy::fixed(EngineId::fp64_tcu, /*fuse=*/true)));
    const auto d = prof::diff(base, cur);
    EXPECT_LT(d.cur_total_s, d.base_total_s);

    bool fused = false, fix = false;
    double share_sum = 0;
    for (const auto &k : d.kernels) {
        fused |= k.name == "moddown_fused";
        fix |= k.name == "moddown_fix";
        share_sum += k.share;
    }
    EXPECT_TRUE(fused);
    EXPECT_TRUE(fix);
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
    // |delta| descending.
    for (size_t i = 1; i < d.kernels.size(); ++i)
        EXPECT_GE(std::abs(d.kernels[i - 1].delta),
                  std::abs(d.kernels[i].delta));
    // The fused run is faster, but fusion renames kernel rows — the
    // gate still fires on the dropped modeled.kernel.moddown_* keys
    // (ratio 0 marks a dropped metric, not a slowdown), preserving
    // compare()'s renames-can't-drop-coverage contract.
    EXPECT_TRUE(d.gated());
    for (const auto &reg : d.regressions)
        EXPECT_EQ(reg.ratio, 0.0) << reg.metric;
    // The reverse direction carries genuine slowdowns (ratio > 1).
    const auto rev = prof::diff(cur, base);
    ASSERT_TRUE(rev.gated());
    bool real_slowdown = false;
    for (const auto &reg : rev.regressions)
        real_slowdown |= reg.ratio > 1.0;
    EXPECT_TRUE(real_slowdown);
}

TEST(ProfDiff, MatchesGoldenFile)
{
    const auto d = prof::diff(diff_fixture("prof_diff_base.json"),
                              diff_fixture("prof_diff_cur.json"));
    // The checked-in pair encodes an ntt regression plus a new ip
    // kernel: attribution splits the 0.3 ms movement 2:1.
    ASSERT_GE(d.kernels.size(), 3u);
    EXPECT_EQ(d.kernels[0].name, "ntt");
    EXPECT_NEAR(d.kernels[0].share, 2.0 / 3.0, 1e-9);
    EXPECT_EQ(d.kernels[1].name, "ip");
    EXPECT_NEAR(d.kernels[1].share, 1.0 / 3.0, 1e-9);
    EXPECT_TRUE(d.gated());

    std::ifstream golden(std::string(NEO_TEST_DATA_DIR) +
                         "/prof_diff_golden.json");
    ASSERT_TRUE(golden.is_open());
    std::stringstream want;
    want << golden.rdbuf();
    EXPECT_EQ(prof::diff_to_json(d) + "\n", want.str());
}

TEST(ProfDiff, HandlesBenchKindArtifactsWithoutKernels)
{
    // bench_util artifacts have no kernels array: the diff degrades to
    // a metrics comparison instead of throwing.
    const auto base = json::Value::parse(
        R"({"schema":"neo.bench/1","kind":"bench","id":"x",)"
        R"("metrics":{"a":1,"b":2}})");
    const auto cur = json::Value::parse(
        R"({"schema":"neo.bench/1","kind":"bench","id":"x",)"
        R"("metrics":{"a":1,"b":3}})");
    const auto d = prof::diff(base, cur);
    EXPECT_TRUE(d.kernels.empty());
    ASSERT_EQ(d.metrics.size(), 1u);
    EXPECT_EQ(d.metrics[0].name, "b");
    EXPECT_EQ(d.metrics[0].delta, 1.0);
    EXPECT_TRUE(d.gated()); // b regressed 50%
}

#ifdef NEO_PROF_BIN
namespace {

int
run_cli(const std::string &args)
{
    const int status =
        std::system((std::string(NEO_PROF_BIN) + " " + args).c_str());
    return WEXITSTATUS(status);
}

} // namespace

TEST(ProfCli, BaselineGateExitsNonzeroOnRegression)
{
    const std::string dir = ::testing::TempDir();
    const std::string cur_path = dir + "/prof_cli_current.json";
    const std::string base_path = dir + "/prof_cli_baseline.json";

    ASSERT_EQ(run_cli("mul --engine fp64_tcu --json " + cur_path +
                      " >/dev/null"),
              0);

    // Self-compare: clean.
    EXPECT_EQ(run_cli("mul --engine fp64_tcu --baseline " + cur_path +
                      " >/dev/null"),
              0);

    // Perturb the baseline 20% downward: the live run now reads as a
    // >=10% regression and the gate must fail the build.
    auto r = prof::profile("mul", ExecPolicy::fixed(EngineId::fp64_tcu));
    for (auto &[k, v] : r.metrics)
        v /= 1.2;
    prof::write_json(r, base_path);
    EXPECT_EQ(run_cli("mul --engine fp64_tcu --baseline " + base_path +
                      " >/dev/null"),
              1);

    // Usage errors are distinct from regressions.
    EXPECT_EQ(run_cli("definitely-not-a-workload >/dev/null 2>&1"), 2);
}

TEST(ProfCli, DiffExitCodeContract)
{
    const std::string base =
        std::string(NEO_TEST_DATA_DIR) + "/prof_diff_base.json";
    const std::string cur =
        std::string(NEO_TEST_DATA_DIR) + "/prof_diff_cur.json";
    // Self-diff: clean.
    EXPECT_EQ(run_cli("--diff " + base + " " + base + " >/dev/null"), 0);
    // The checked-in pair regresses past the default threshold.
    EXPECT_EQ(run_cli("--diff " + base + " " + cur + " >/dev/null"), 1);
    // A loose threshold tolerates it.
    EXPECT_EQ(run_cli("--diff " + base + " " + cur +
                      " --threshold 0.6 >/dev/null"),
              0);
    // Usage / IO errors are distinct from gating.
    EXPECT_EQ(run_cli("--diff " + base + " /no/such.json"
                      " >/dev/null 2>&1"),
              2);
    EXPECT_EQ(run_cli("--diff " + base + " >/dev/null 2>&1"), 2);

    // --json writes the machine-readable report (golden-pinned via
    // the library test above).
    const std::string out = ::testing::TempDir() + "/prof_cli_diff.json";
    EXPECT_EQ(run_cli("--diff " + base + " " + cur + " --json " + out +
                      " >/dev/null"),
              1);
    const auto doc = json::Value::parse_file(out);
    EXPECT_EQ(doc.at("schema").as_string(), prof::kDiffSchema);
    EXPECT_TRUE(doc.at("gated").as_bool());
}
#endif
