/**
 * neo::obs — spans, counters, exporters, and the traced pipeline.
 *
 * The load-bearing assertion is TracedPipelineMatchesAnalyticCounts:
 * one keyswitch_klss_pipeline run must record exactly the GEMM / NTT /
 * BConv / IP span counts that keyswitch_pipeline_kernel_counts predicts
 * (the same numbers bench/table7_kernels prints) — the observability
 * layer and the closed-form kernel model agree invocation for
 * invocation.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "ckks/keygen.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "neo/pipeline.h"
#include "obs/obs.h"

namespace neo {
namespace {

using namespace ckks;

// ---------------------------------------------------------------------
// Spans and scopes
// ---------------------------------------------------------------------

TEST(ObsCore, ScopeInstallsAndRestoresSink)
{
    obs::Registry *ambient = obs::current();
    {
        obs::Scope outer;
        EXPECT_EQ(obs::current(), &outer.registry());
        {
            obs::Scope inner;
            EXPECT_EQ(obs::current(), &inner.registry());
            obs::Span span("nested", obs::cat::stage);
        }
        // The inner span was recorded in the inner scope only.
        EXPECT_EQ(outer.counter("span.stage"), 0u);
        EXPECT_EQ(obs::current(), &outer.registry());
    }
    EXPECT_EQ(obs::current(), ambient);
}

TEST(ObsCore, SpanNestingUnderParallelFor)
{
    obs::Scope::Options so;
    so.registry.record_events = true;
    obs::Scope scope(so);

    const size_t iters = 64;
    {
        obs::Span outer("outer", obs::cat::stage);
        parallel_for(0, iters, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
                obs::Span inner("worker", obs::cat::ntt);
                (void)inner;
            }
        });
    }

    EXPECT_EQ(scope.counter("span.stage"), 1u);
    EXPECT_EQ(scope.counter("span.ntt"), iters);

    // Every worker span must fall inside the enclosing stage span's
    // [start, end) window — the timeline nests even across threads.
    auto events = scope.registry().events();
    ASSERT_EQ(events.size(), iters + 1);
    const obs::TraceEvent *outer_ev = nullptr;
    for (const auto &e : events)
        if (e.name == "outer")
            outer_ev = &e;
    ASSERT_NE(outer_ev, nullptr);
    for (const auto &e : events) {
        if (e.name != "worker")
            continue;
        EXPECT_GE(e.ts_ns, outer_ev->ts_ns);
        EXPECT_LE(e.ts_ns + e.dur_ns, outer_ev->ts_ns + outer_ev->dur_ns);
    }
}

TEST(ObsCore, EventCapIncrementsDroppedNotStored)
{
    obs::Registry::Options opts;
    opts.record_events = true;
    opts.max_events = 4;
    obs::Registry reg(opts);
    for (int i = 0; i < 10; ++i)
        reg.record_event("e", obs::cat::stage, 0, i, 1);
    EXPECT_EQ(reg.events().size(), 4u);
    EXPECT_EQ(reg.dropped_events(), 6u);
    // Counters keep counting past the event cap.
    EXPECT_EQ(reg.counter("span.stage"), 10u);
}

// ---------------------------------------------------------------------
// Engine registry
// ---------------------------------------------------------------------

TEST(ObsCore, PipelineEnginesFromName)
{
    // The stringly PipelineEngines::from_name surface is deprecated;
    // EngineRegistry is the name <-> id mapping it resolved through.
    for (const EngineId id : EngineRegistry::ids()) {
        EXPECT_EQ(EngineRegistry::parse(EngineRegistry::name(id)), id);
        EXPECT_EQ(EngineRegistry::try_parse(EngineRegistry::name(id)),
                  id);
    }
    EXPECT_THROW(EngineRegistry::parse("cuda"), std::invalid_argument);
    EXPECT_FALSE(EngineRegistry::try_parse("cuda").has_value());
    // The deprecated shim must keep resolving until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    for (auto name : PipelineEngines::names())
        EXPECT_NO_THROW(PipelineEngines::from_name(name));
    EXPECT_THROW(PipelineEngines::from_name("cuda"),
                 std::invalid_argument);
#pragma GCC diagnostic pop
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// Brace/bracket balance outside string literals — a cheap structural
/// well-formedness check for the chrome-trace JSON.
bool
json_balanced(const std::string &s)
{
    int brace = 0, bracket = 0;
    bool in_str = false, esc = false;
    for (char c : s) {
        if (in_str) {
            if (esc)
                esc = false;
            else if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        switch (c) {
        case '"': in_str = true; break;
        case '{': ++brace; break;
        case '}': --brace; break;
        case '[': ++bracket; break;
        case ']': --bracket; break;
        default: break;
        }
        if (brace < 0 || bracket < 0)
            return false;
    }
    return brace == 0 && bracket == 0 && !in_str;
}

/// Fixed content shared by the exporter tests: two injected spans
/// with hand-picked timestamps, one counter, one GEMM.
void
fill_golden(obs::Registry &reg)
{
    reg.record_event("ntt_fwd", obs::cat::ntt, 0, 1000, 500);
    reg.record_event("gemm_tile", obs::cat::gemm, 1, 2000, 250);
    reg.add("ks.ntt_limbs", 7);
    reg.add_gemm(16, 16, 16);
}

obs::Registry::Options
with_events()
{
    obs::Registry::Options opts;
    opts.record_events = true;
    return opts;
}

TEST(ObsExport, ChromeJsonMatchesGoldenFile)
{
    obs::Registry reg(with_events());
    fill_golden(reg);
    std::ostringstream out;
    obs::export_chrome_json(reg, out);

    std::ifstream golden(std::string(NEO_TEST_DATA_DIR) +
                         "/obs_trace_golden.json");
    ASSERT_TRUE(golden.is_open()) << "missing tests/data golden file";
    std::stringstream want;
    want << golden.rdbuf();
    EXPECT_EQ(out.str(), want.str());
    EXPECT_TRUE(json_balanced(out.str()));
}

TEST(ObsExport, SummaryListsCountersValuesAndShapes)
{
    obs::Registry reg(with_events());
    fill_golden(reg);
    std::ostringstream out;
    obs::export_summary(reg, out);
    const std::string s = out.str();
    for (const char *needle :
         {"ks.ntt_limbs", "span.ntt", "span.gemm", "gemm.calls",
          "wall.ntt.ns", "16x16x16"})
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
}

// ---------------------------------------------------------------------
// Traced pipeline
// ---------------------------------------------------------------------

struct ObsPipeline : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(256, 5, 2));
        ctx_ = new CkksContext(*params_);
        KeyGenerator keygen(*ctx_, 17);
        SecretKey sk = keygen.secret_key();
        klss_rlk_ =
            new KlssEvalKey(keygen.to_klss(keygen.relin_key(sk)));
    }

    static void
    TearDownTestSuite()
    {
        delete klss_rlk_;
        delete ctx_;
        delete params_;
    }

    static RnsPoly
    random_eval_poly(size_t level, u64 seed)
    {
        Rng rng(seed);
        RnsPoly p(ctx_->n(), ctx_->active_mods(level), PolyForm::eval);
        for (size_t i = 0; i < p.limbs(); ++i)
            for (size_t l = 0; l < p.n(); ++l)
                p.limb(i)[l] = rng.uniform(p.modulus(i).value());
        return p;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KlssEvalKey *klss_rlk_;
};

CkksParams *ObsPipeline::params_ = nullptr;
CkksContext *ObsPipeline::ctx_ = nullptr;
KlssEvalKey *ObsPipeline::klss_rlk_ = nullptr;

TEST_F(ObsPipeline, TracedPipelineMatchesAnalyticCounts)
{
    for (size_t level : {5u, 3u}) {
        RnsPoly d2 = random_eval_poly(level, 40 + level);
        obs::Scope scope;
        (void)keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_);

        const auto want =
            keyswitch_pipeline_kernel_counts(*ctx_, level);
        ASSERT_GT(want.gemm, 0u);
        ASSERT_GT(want.ntt, 0u);
        EXPECT_EQ(scope.counter("span.gemm"), want.gemm) << level;
        EXPECT_EQ(scope.counter("span.ntt"), want.ntt) << level;
        EXPECT_EQ(scope.counter("span.bconv"), want.bconv) << level;
        EXPECT_EQ(scope.counter("span.ip"), want.ip) << level;
        // Every GEMM span came from an engine call that also recorded
        // its shape.
        EXPECT_EQ(scope.counter("gemm.calls"), want.gemm) << level;
        EXPECT_EQ(scope.counter("pipeline.keyswitch"), 1u);
        EXPECT_GT(scope.registry().value("modeled.keyswitch.s"), 0.0);
    }
}

TEST_F(ObsPipeline, CountersDeterministicAcrossThreadCounts)
{
    RnsPoly d2 = random_eval_poly(5, 77);
    // Warm the hot-path caches (plane cache, pipeline kernels, key
    // operands) so both measured runs are steady-state: the
    // gemm.plane_cache.* counters are then identical per run instead
    // of shifting from miss-heavy to hit-only between them.
    (void)keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_);
    std::map<std::string, u64, std::less<>> totals[2];
    const size_t threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        ThreadPool::set_global_threads(threads[i]);
        obs::Scope scope;
        (void)keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_);
        totals[i] = scope.registry().counters();
    }
    ThreadPool::set_global_threads(0); // back to NEO_NUM_THREADS
    EXPECT_EQ(totals[0], totals[1]);
    EXPECT_FALSE(totals[0].empty());
}

TEST_F(ObsPipeline, GlobalSinkCapturesPipelineWhenTraced)
{
    // Under the obs_trace_export ctest entry (NEO_TRACE=json) this
    // runs one keyswitch against the process-global registry, so the
    // exported trace carries a full kernel timeline. Without an
    // ambient sink it exercises the probes-compile-to-nothing path.
    RnsPoly d2 = random_eval_poly(5, 13);
    obs::Registry *ambient = obs::current();
    const u64 before =
        ambient ? ambient->counter("pipeline.keyswitch") : 0;
    (void)keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_);
    if (ambient != nullptr) {
        EXPECT_EQ(ambient->counter("pipeline.keyswitch"), before + 1);
    }
}

TEST_F(ObsPipeline, PipelineTraceExportsWellFormedJson)
{
    obs::Scope::Options so;
    so.registry.record_events = true;
    obs::Scope scope(so);
    RnsPoly d2 = random_eval_poly(5, 91);
    (void)keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_);

    std::ostringstream out;
    obs::export_chrome_json(scope.registry(), out);
    const std::string json = out.str();
    EXPECT_TRUE(json_balanced(json));
    for (const char *needle :
         {"\"traceEvents\"", "\"keyswitch_klss_pipeline\"",
          "\"pipeline_modup\"", "\"mntt_fwd\"", "\"neoCounters\"",
          "\"neoGemmShapes\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    EXPECT_EQ(scope.registry().dropped_events(), 0u);
}

} // namespace
} // namespace neo
