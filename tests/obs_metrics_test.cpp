/**
 * neo::obs telemetry suite (PR 8): histogram bucket scheme and
 * percentile semantics, gauges with high-water marks, cross-registry
 * merge, and the two new exporters against golden files.
 *
 * The load-bearing assertions are the determinism tests: the same
 * observation multiset must produce bit-identical bucket counts and
 * percentiles at 1/2/7/16 worker threads (synthetic values recorded
 * from inside parallel_for), and a fixed keyswitch workload must
 * produce identical work.* histograms across thread counts (wall-clock
 * lat.* series are excluded — durations are real time, not
 * deterministic).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "ckks/keygen.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "neo/pipeline.h"
#include "obs/obs.h"

namespace neo {
namespace {

using namespace ckks;
using obs::HistogramSnapshot;

std::string
golden_path(const char *name)
{
    return std::string(NEO_TEST_DATA_DIR) + "/" + name;
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------
// Bucket scheme
// ---------------------------------------------------------------------

TEST(ObsHistogram, BucketIndexEdges)
{
    // Everything below 1 (and non-finite garbage) is the underflow
    // bucket; 1.0 starts the first real octave.
    EXPECT_EQ(HistogramSnapshot::bucket_index(0.0), 0);
    EXPECT_EQ(HistogramSnapshot::bucket_index(0.999), 0);
    EXPECT_EQ(HistogramSnapshot::bucket_index(-5.0), 0);
    EXPECT_EQ(HistogramSnapshot::bucket_index(
                  std::numeric_limits<double>::quiet_NaN()),
              0);
    EXPECT_EQ(HistogramSnapshot::bucket_index(1.0), 1);

    // Octave e=0 splits at 1, 1.25, 1.5, 1.75.
    EXPECT_EQ(HistogramSnapshot::bucket_index(1.24), 1);
    EXPECT_EQ(HistogramSnapshot::bucket_index(1.25), 2);
    EXPECT_EQ(HistogramSnapshot::bucket_index(1.5), 3);
    EXPECT_EQ(HistogramSnapshot::bucket_index(1.75), 4);
    EXPECT_EQ(HistogramSnapshot::bucket_index(2.0), 5);

    // Top bucket clamps everything at or above 2^64.
    const i32 top = HistogramSnapshot::kNumBuckets - 1;
    EXPECT_EQ(HistogramSnapshot::bucket_index(std::ldexp(1.0, 64)), top);
    EXPECT_EQ(HistogramSnapshot::bucket_index(
                  std::numeric_limits<double>::infinity()),
              top);
    EXPECT_EQ(HistogramSnapshot::bucket_index(std::ldexp(1.75, 63)), top);
}

TEST(ObsHistogram, EveryBucketContainsItsEdgesAndBoundsItsValues)
{
    for (i32 idx = 1; idx < HistogramSnapshot::kNumBuckets; ++idx) {
        const double lo = HistogramSnapshot::bucket_lower(idx);
        const double hi = HistogramSnapshot::bucket_upper(idx);
        ASSERT_LT(lo, hi);
        // Edge ratio ≤ 1.25 bounds the percentile overestimate.
        EXPECT_LE(hi / lo, 1.25 + 1e-12) << idx;
        // The inclusive lower edge maps into the bucket.
        EXPECT_EQ(HistogramSnapshot::bucket_index(lo), idx);
    }
    EXPECT_EQ(HistogramSnapshot::bucket_lower(0), 0.0);
    EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 1.0);
}

TEST(ObsHistogram, PercentileSemantics)
{
    obs::Registry reg;
    // 100 observations 1..100: p50 covers the 50th smallest, p99 the
    // 99th; the bucket upper edge bounds them within 25%.
    for (int v = 1; v <= 100; ++v)
        reg.observe("work.test", v);
    const HistogramSnapshot h = reg.histogram("work.test");
    EXPECT_EQ(h.count, 100u);
    EXPECT_EQ(h.min, 1.0);
    EXPECT_EQ(h.max, 100.0);
    EXPECT_EQ(h.sum, 5050.0);

    for (double p : {0.50, 0.95, 0.99}) {
        const double exact = std::ceil(p * 100);
        const double got = h.percentile(p);
        EXPECT_GE(got, exact) << p;
        EXPECT_LE(got, exact * 1.25) << p;
    }
    // The highest populated bucket reports the exact max; p outside
    // (0,1) pins to the exact extremes.
    EXPECT_EQ(h.percentile(1.0), 100.0);
    EXPECT_EQ(h.percentile(2.0), 100.0);
    EXPECT_EQ(h.percentile(0.0), 1.0);
    EXPECT_EQ(h.percentile(-1.0), 1.0);
    // A single-bucket histogram answers every quantile with its max.
    obs::Registry one;
    one.observe("x", 42.0);
    EXPECT_EQ(one.histogram("x").percentile(0.5), 42.0);
}

TEST(ObsHistogram, SnapshotMergeMatchesCombinedRecording)
{
    obs::Registry whole, part1, part2;
    Rng rng(123);
    for (int i = 0; i < 500; ++i) {
        const double v = static_cast<double>(rng.uniform(1u << 20));
        whole.observe("h", v);
        (i % 2 == 0 ? part1 : part2).observe("h", v);
    }
    HistogramSnapshot merged = part1.histogram("h");
    merged.merge(part2.histogram("h"));
    const HistogramSnapshot want = whole.histogram("h");
    EXPECT_EQ(merged.buckets, want.buckets);
    EXPECT_EQ(merged.count, want.count);
    EXPECT_EQ(merged.sum, want.sum);
    EXPECT_EQ(merged.min, want.min);
    EXPECT_EQ(merged.max, want.max);
}

// ---------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------

TEST(ObsGauges, SetAddMaxAndHighWater)
{
    obs::Registry reg;
    reg.set_gauge("g", 10);
    reg.add_gauge("g", 5);
    EXPECT_EQ(reg.gauge("g").current, 15);
    EXPECT_EQ(reg.gauge("g").high_water, 15);
    reg.add_gauge("g", -12);
    EXPECT_EQ(reg.gauge("g").current, 3);
    EXPECT_EQ(reg.gauge("g").high_water, 15); // marks never fall
    reg.max_gauge("g", 8);
    EXPECT_EQ(reg.gauge("g").current, 8);
    reg.max_gauge("g", 2); // below current: no-op
    EXPECT_EQ(reg.gauge("g").current, 8);
    EXPECT_EQ(reg.gauge("g").high_water, 15);
    reg.set_gauge("g", 1);
    EXPECT_EQ(reg.gauge("g").current, 1);
}

TEST(ObsGauges, FreeProbesAreNoOpsWithoutSink)
{
    // Must not crash or leak state into a later scope.
    obs::observe("nosink.h", 1.0);
    obs::set_gauge("nosink.g", 1.0);
    obs::add_gauge("nosink.g", 1.0);
    obs::max_gauge("nosink.g", 1.0);
    obs::Scope scope;
    EXPECT_EQ(scope.registry().gauges().count("nosink.g"), 0u);
    EXPECT_EQ(scope.registry().histograms().count("nosink.h"), 0u);
}

// ---------------------------------------------------------------------
// merge_from
// ---------------------------------------------------------------------

TEST(ObsMerge, MergeFromFoldsEverySeries)
{
    obs::Registry::Options ev;
    ev.record_events = true;
    obs::Registry dst(ev), src(ev);
    dst.add("c", 1);
    src.add("c", 2);
    src.add_value("v", 1.5);
    dst.observe("h", 2.0);
    src.observe("h", 3.0);
    dst.set_gauge("g", 50);
    src.set_gauge("g", 10); // newer level, lower mark
    src.add_gemm(16, 16, 16);
    src.record_event("leaf", obs::cat::ntt, 0, 100, 10);

    dst.merge_from(src);
    EXPECT_EQ(dst.counter("c"), 3u);
    EXPECT_EQ(dst.value("v"), 1.5);
    EXPECT_EQ(dst.histogram("h").count, 2u);
    EXPECT_EQ(dst.histogram("h").min, 2.0);
    EXPECT_EQ(dst.histogram("h").max, 3.0);
    // Gauge: other's current level, max of the high-water marks.
    EXPECT_EQ(dst.gauge("g").current, 10);
    EXPECT_EQ(dst.gauge("g").high_water, 50);
    EXPECT_EQ(dst.gemm_shapes().size(), 1u);
    ASSERT_EQ(dst.events().size(), 1u); // src's leaf event came across
}

TEST(ObsMerge, MergedEventsLandOnDestinationTimeline)
{
    obs::Registry::Options ev;
    ev.record_events = true;
    obs::Registry dst(ev);
    obs::Registry src(ev); // constructed after dst: later epoch
    src.record_event("leaf", obs::cat::ntt, 0, 1000, 10);
    dst.merge_from(src);
    bool found = false;
    for (const auto &e : dst.events()) {
        if (e.name != "leaf")
            continue;
        found = true;
        // src's epoch is at or after dst's, so the re-based timestamp
        // cannot move backwards.
        EXPECT_GE(e.ts_ns, 1000);
        EXPECT_EQ(e.dur_ns, 10);
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------

TEST(ObsDeterminism, SyntheticHistogramIdenticalAt1_2_7_16Threads)
{
    // The same multiset of values observed from worker threads must
    // produce byte-identical snapshots regardless of the thread count
    // or interleaving: bucket placement is value-only, and the sum is
    // exact integer accumulation below 2^53.
    std::vector<double> values(10000);
    Rng rng(7);
    for (auto &v : values)
        v = static_cast<double>(rng.uniform(1ull << 40));

    std::vector<HistogramSnapshot> snaps;
    for (size_t threads : {1u, 2u, 7u, 16u}) {
        ThreadPool::set_global_threads(threads);
        obs::Scope scope;
        parallel_for(0, values.size(), [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                obs::observe("work.synthetic", values[i]);
        });
        snaps.push_back(scope.registry().histogram("work.synthetic"));
    }
    ThreadPool::set_global_threads(0);
    for (size_t i = 1; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].buckets, snaps[0].buckets);
        EXPECT_EQ(snaps[i].count, snaps[0].count);
        EXPECT_EQ(snaps[i].sum, snaps[0].sum);
        EXPECT_EQ(snaps[i].min, snaps[0].min);
        EXPECT_EQ(snaps[i].max, snaps[0].max);
        for (double p : {0.5, 0.95, 0.99})
            EXPECT_EQ(snaps[i].percentile(p), snaps[0].percentile(p));
    }
}

TEST(ObsDeterminism, KeyswitchWorkHistogramsIdenticalAcrossThreads)
{
    const CkksParams params = CkksParams::test_params(256, 5, 2);
    const CkksContext ctx(params);
    KeyGenerator keygen(ctx, 17);
    const KlssEvalKey rlk = keygen.to_klss(keygen.relin_key(
        keygen.secret_key()));
    Rng rng(99);
    RnsPoly d2(ctx.n(), ctx.active_mods(5), PolyForm::eval);
    for (size_t i = 0; i < d2.limbs(); ++i)
        for (size_t l = 0; l < d2.n(); ++l)
            d2.limb(i)[l] = rng.uniform(d2.modulus(i).value());
    // Warm hot-path caches so every measured run is steady-state.
    (void)keyswitch_klss_pipeline(d2, rlk, ctx);

    std::vector<std::map<std::string, HistogramSnapshot, std::less<>>>
        runs;
    for (size_t threads : {1u, 2u, 7u, 16u}) {
        ThreadPool::set_global_threads(threads);
        obs::Scope scope;
        (void)keyswitch_klss_pipeline(d2, rlk, ctx);
        auto all = scope.registry().histograms();
        // Drop the wall-clock latency series: durations are real
        // time. Everything else (work.*) is value-deterministic.
        for (auto it = all.begin(); it != all.end();)
            it = it->first.rfind("lat.", 0) == 0 ? all.erase(it)
                                                 : std::next(it);
        runs.push_back(std::move(all));
    }
    ThreadPool::set_global_threads(0);
    ASSERT_FALSE(runs[0].empty());
    EXPECT_TRUE(runs[0].count("work.keyswitch.limbs"));
    EXPECT_TRUE(runs[0].count("work.gemm.flops"));
    for (size_t i = 1; i < runs.size(); ++i) {
        ASSERT_EQ(runs[i].size(), runs[0].size()) << i;
        for (const auto &[name, h] : runs[0]) {
            const auto &other = runs[i].at(name);
            EXPECT_EQ(other.buckets, h.buckets) << name;
            EXPECT_EQ(other.count, h.count) << name;
            EXPECT_EQ(other.sum, h.sum) << name;
            for (double p : {0.5, 0.95, 0.99})
                EXPECT_EQ(other.percentile(p), h.percentile(p)) << name;
        }
    }
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// Fixed registry content for the exporter goldens: everything is
/// injected (timestamps included), so the export is reproducible.
void
fill_metrics_golden(obs::Registry &reg)
{
    // A two-thread span timeline with nesting on tid 0:
    // pipeline(0..10000) > modup(1000..4000) > ntt(1500..2500);
    // a sibling leaf on tid 1.
    reg.record_event("ntt_fwd", obs::cat::ntt, 0, 1500, 1000);
    reg.record_event("pipeline_modup", obs::cat::stage, 0, 1000, 3000);
    reg.record_event("keyswitch", obs::cat::stage, 0, 0, 10000);
    reg.record_event("gemm_tile", obs::cat::gemm, 1, 2000, 250);
    reg.add("ks.ntt_limbs", 7);
    reg.add_gemm(256, 16, 16);
    reg.observe("work.keyswitch.limbs", 6);
    reg.observe("work.keyswitch.limbs", 6);
    reg.observe("work.keyswitch.limbs", 3);
    reg.set_gauge("plane_cache.resident_bytes", 8192);
    reg.add_gauge("plane_cache.resident_bytes", -4096);
    reg.add_value("modeled.keyswitch.s", 0.25);
}

obs::Registry::Options
with_events()
{
    obs::Registry::Options opts;
    opts.record_events = true;
    return opts;
}

TEST(ObsExporters, OpenMetricsMatchesGoldenFile)
{
    obs::Registry reg(with_events());
    fill_metrics_golden(reg);
    std::ostringstream out;
    obs::export_openmetrics(reg, out);
    EXPECT_EQ(out.str(), read_file(golden_path("obs_openmetrics_golden.txt")));
    // Structural spot checks, so a golden regen can't silently drop
    // the series the scrape contract promises.
    const std::string s = out.str();
    for (const char *needle :
         {"neo_ks_ntt_limbs_total 7", "# EOF",
          "neo_lat_stage_ns_bucket{le=", "neo_lat_stage_ns_p50",
          "neo_lat_stage_keyswitch_ns_p99",
          "neo_work_keyswitch_limbs_count 3",
          "neo_plane_cache_resident_bytes 4096",
          "neo_plane_cache_resident_bytes_high_water 8192"})
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
}

TEST(ObsExporters, FlamegraphMatchesGoldenFile)
{
    obs::Registry reg(with_events());
    fill_metrics_golden(reg);
    std::ostringstream out;
    obs::export_flamegraph(reg, out);
    EXPECT_EQ(out.str(), read_file(golden_path("obs_flame_golden.txt")));
    // The nested ntt is a leaf under keyswitch;modup, and every line
    // carries exclusive (self) time.
    const std::string s = out.str();
    EXPECT_NE(s.find("keyswitch;pipeline_modup;ntt_fwd 1000\n"),
              std::string::npos);
    EXPECT_NE(s.find("keyswitch;pipeline_modup 2000\n"),
              std::string::npos);
    EXPECT_NE(s.find("keyswitch 7000\n"), std::string::npos);
    EXPECT_NE(s.find("gemm_tile 250\n"), std::string::npos);
}

TEST(ObsExporters, ChromeExportByteStableUnderTidReorder)
{
    // The same spans recorded in a different arrival order (the racy
    // part of thread-index assignment) must export byte-identically:
    // the exporter orders by (tid, ts, name, dur), none of which
    // depend on arrival.
    obs::Registry a(with_events()), b(with_events());
    fill_metrics_golden(a);
    obs::Registry &r = b;
    r.record_event("gemm_tile", obs::cat::gemm, 1, 2000, 250);
    r.record_event("keyswitch", obs::cat::stage, 0, 0, 10000);
    r.record_event("ntt_fwd", obs::cat::ntt, 0, 1500, 1000);
    r.record_event("pipeline_modup", obs::cat::stage, 0, 1000, 3000);
    r.add("ks.ntt_limbs", 7);
    r.add_gemm(256, 16, 16);
    r.observe("work.keyswitch.limbs", 6);
    r.observe("work.keyswitch.limbs", 6);
    r.observe("work.keyswitch.limbs", 3);
    r.set_gauge("plane_cache.resident_bytes", 8192);
    r.add_gauge("plane_cache.resident_bytes", -4096);
    r.add_value("modeled.keyswitch.s", 0.25);

    std::ostringstream oa, ob;
    obs::export_chrome_json(a, oa);
    obs::export_chrome_json(b, ob);
    EXPECT_EQ(oa.str(), ob.str());

    // Tie case: same ts on two tids — tid-major order breaks the tie.
    obs::Registry t1(with_events()), t2(with_events());
    t1.record_event("x", obs::cat::ntt, 0, 500, 10);
    t1.record_event("x", obs::cat::ntt, 1, 500, 10);
    t2.record_event("x", obs::cat::ntt, 1, 500, 10);
    t2.record_event("x", obs::cat::ntt, 0, 500, 10);
    std::ostringstream o1, o2;
    obs::export_chrome_json(t1, o1);
    obs::export_chrome_json(t2, o2);
    EXPECT_EQ(o1.str(), o2.str());
}

TEST(ObsExporters, SummaryShowsGaugesAndHistograms)
{
    obs::Registry reg(with_events());
    fill_metrics_golden(reg);
    std::ostringstream out;
    obs::export_summary(reg, out);
    const std::string s = out.str();
    for (const char *needle :
         {"plane_cache.resident_bytes", "high water",
          "work.keyswitch.limbs", "p50", "p99"})
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
}

} // namespace
} // namespace neo
