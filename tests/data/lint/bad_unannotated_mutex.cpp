// Fixture: raw std mutex members carry no capability annotation.
#include <mutex>
#include <shared_mutex>
struct Cache
{
    std::mutex mu;
    mutable std::shared_mutex rw;
};
