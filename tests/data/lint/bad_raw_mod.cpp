// Fixture: raw modulus arithmetic in a hot-path file.
// neo-lint: as-path(src/rns/fixture.cpp)
unsigned long long
f(unsigned long long x, unsigned long long q, const Modulus &m)
{
    unsigned long long r = x % q;
    r /= q;
    unsigned long long s = x % m.value();
    return r + s;
}
