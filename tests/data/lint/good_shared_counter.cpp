// Fixture: every scalar in the lock-owning class is guarded, atomic,
// or const; the one deliberate exception carries an allow marker.
struct Stats
{
    Mutex mu;
    u64 hits NEO_GUARDED_BY(mu) = 0;
    std::atomic<size_t> calls{0};
    const i64 epoch_ns = 0;
    // neo-lint: allow(nonatomic-shared-counter) — registry-guarded
    u64 last_use = 0;
};
