// Fixture: allow(...) suppressions — same line and line above.
// neo-lint: as-path(src/neo/fixture.cpp)
unsigned long long
f(unsigned long long x, unsigned long long q)
{
    unsigned long long a = x % q; // neo-lint: allow(raw-mod)
    // neo-lint: allow(raw-mod)
    unsigned long long b = x % q;
    // neo-lint: allow(naked-new) — wrong rule: does NOT cover raw-mod
    unsigned long long c = x % q;
    return a + b + c;
}
