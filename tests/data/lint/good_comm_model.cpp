// Fixture: interconnect/shard cost-model code — float math over byte
// counts and shard sizes (never limb data) plus index math must pass
// raw-mod and float-on-limb tree-clean.
// neo-lint: as-path(src/neo/fixture.cpp)
double
collective_time(size_t shard_limbs, size_t n, size_t batch,
                size_t devices, size_t steps, double bandwidth,
                double latency_s)
{
    const double shard_bytes = static_cast<double>(shard_limbs) *
                               static_cast<double>(n) * 8.0 *
                               static_cast<double>(batch);
    const size_t chunk = (shard_limbs + devices - 1) / devices;
    const size_t ring_peer = (devices + 1) % devices; // neighbour index
    const double per_step =
        latency_s + shard_bytes / (static_cast<double>(chunk) * bandwidth);
    return static_cast<double>(steps + ring_peer) * per_step;
}
