// Fixture: floating-point casts of limb data outside src/tensor/.
// neo-lint: as-path(src/poly/fixture.cpp)
double
f(const unsigned long long *limbs, size_t i, const Modulus &q)
{
    double a = static_cast<double>(limbs[i]);
    long double b = static_cast<long double>(q.value());
    return a + static_cast<double>(b);
}
