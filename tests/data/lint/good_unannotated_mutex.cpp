// Fixture: the annotated neo wrappers pass; one sanctioned raw member
// (wrapping an external API) is covered by an allow marker.
struct Cache
{
    Mutex mu;
    mutable SharedMutex rw;
    // neo-lint: allow(unannotated-mutex) — handed to a C callback API
    std::mutex raw_for_ffi;
};
