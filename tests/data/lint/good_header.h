// Fixture: a hygienic header — must produce no findings.
#pragma once

namespace neo {

using std::size_t; // a using-declaration is fine; only
                   // `using namespace` leaks wholesale

inline int
f()
{
    return 1;
}

} // namespace neo
