// Fixture: unordered iteration feeding serialized output.
#include <ostream>
#include <string>
#include <unordered_map>
struct Exporter
{
    std::unordered_map<std::string, int> counts;
    void write_json(std::ostream &os);
};
void
Exporter::write_json(std::ostream &os)
{
    for (const auto &kv : counts)
        os.put('x');
}
void
tally(std::ostream &os, const std::unordered_map<std::string, int> &freq)
{
    for (const auto &kv : freq)
        os << kv.second;
}
