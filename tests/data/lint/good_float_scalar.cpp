// Fixture: float casts of scalar shape/byte counts are fine.
// neo-lint: as-path(src/poly/fixture.cpp)
double
f(size_t n, size_t bytes)
{
    double a = static_cast<double>(n);
    double b = static_cast<double>(bytes) / 1e9;
    return a + b;
}
