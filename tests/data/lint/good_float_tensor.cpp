// Fixture: the same limb cast is sanctioned inside src/tensor/
// bit-slicing code.
// neo-lint: as-path(src/tensor/fixture.cpp)
double
f(const unsigned long long *limbs, size_t i)
{
    return static_cast<double>(limbs[i]);
}
