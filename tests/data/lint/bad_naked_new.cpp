// Fixture: naked new. A renewed identifier must not match the word.
int *
f(bool renew)
{
    int *p = new int[4];
    (void)renew;
    return p;
}
