// Fixture: naked lock()/unlock() calls on known lock members.
struct Guarded
{
    Mutex mu;
    SharedMutex rw;
    int work();
};
int
Guarded::work()
{
    mu.lock();
    rw.lock_shared();
    rw.unlock_shared();
    mu.unlock();
    other.lock(); // unknown receiver: not a lock member here
    return 0;
}
