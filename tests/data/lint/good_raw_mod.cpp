// Fixture: sanctioned modular arithmetic — must produce no findings.
// neo-lint: as-path(src/rns/fixture.cpp)
unsigned long long
f(unsigned long long x, size_t i, size_t nmods, const Modulus &q)
{
    unsigned long long a = q.reduce(x);       // vetted helper
    size_t slot = i % nmods;                  // index math, not limbs
    size_t half = i / 2;                      // plain integer division
    const char *s = "x % q inside a string";  // literal, blanked
    // x % q inside a comment is blanked too
    return a + slot + half + (s != nullptr);
}
