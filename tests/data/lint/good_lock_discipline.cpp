// Fixture: RAII guards and non-lock receivers pass; one sanctioned
// raw call (FFI handoff) is covered by an allow marker.
struct Guarded
{
    Mutex mu;
    void work();
};
void
Guarded::work()
{
    LockGuard guard(mu);
    widget.lock(); // receiver is not a lock member
    // neo-lint: allow(lock-discipline) — raw handle crosses an FFI edge
    mu.lock();
}
