// Fixture: header missing #pragma once and leaking a namespace.
using namespace std;

inline int
f()
{
    return 1;
}
