// Fixture: raw string literals are blanked before rules match — the
// rule-triggering text inside them must not fire, and multi-line raw
// strings keep line numbers aligned.
// neo-lint: as-path(src/neo/fixture.cpp)
const char *kJson = R"({"x % q": "new int", "srand": 7})";
const char *kMulti = R"neo(
    x % q; renew = new Thing; srand(7); time(0);
    std::unordered_map<int, int> fake;
    static int counter = 0;
)neo";
const char *kPrefixed = u8R"(std::random_device inside)";
