// Fixture: obs::Span constructed as a discarded temporary — it is
// destroyed at the end of the full expression and measures nothing.
void
f()
{
    obs::Span("kernel", "ntt");
    neo::obs::Span("kernel", "bconv");
}
