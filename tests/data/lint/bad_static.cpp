// Fixture: function-local mutable static state.
void
f()
{
    static int counter = 0;
    static const int limit = 8;
    static std::mutex mu;
    static std::atomic<int> hits{0};
    if (++counter > limit)
        hits.fetch_add(1);
}
