// Fixture: plain scalars in a lock-owning class, neither guarded nor
// atomic; guarded/atomic/float members and lock-free classes pass.
struct Stats
{
    Mutex mu;
    u64 hits = 0;
    bool dirty = false;
    size_t depth NEO_GUARDED_BY(mu) = 0;
    std::atomic<u64> fast{0};
    double mean = 0.0;
};
struct Plain
{
    u64 hits = 0;
};
