// Fixture: legitimate obs::Span uses — named spans, bound or passed
// temporaries, optionals and longer identifiers must not match.
void
f(bool deep)
{
    obs::Span span("kernel", "ntt");          // named: spans the scope
    auto s = obs::Span("kernel", "bconv");    // bound temporary
    take(obs::Span("kernel", "ip"));          // passed temporary
    std::optional<obs::Span> opt;             // type position
    if (deep)
        opt.emplace("stage", "modup");
    obs::SpanTimer("kernel", "merge");        // different type
    myobs::Span("kernel", "split");           // different namespace
    // neo-lint: allow(obs-span-leak) — deliberate: times the ctor only
    obs::Span("kernel", "ctor");
    (void)span;
    (void)s;
}
