// Fixture: non-reproducible randomness sources.
int
f()
{
    int a = rand();
    std::random_device rd;
    srand(static_cast<unsigned>(rd()));
    unsigned seed = static_cast<unsigned>(time(nullptr));
    int operand = a;  // "rand" inside an identifier must not match
    return operand + static_cast<int>(seed);
}
