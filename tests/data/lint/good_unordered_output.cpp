// Fixture: order-insensitive accumulation passes; the collect-then-
// sort loop inside the output path carries an allow marker.
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>
struct Exporter
{
    std::unordered_map<std::string, int> counts;
    int total();
    void write_json(std::ostream &os);
};
int
Exporter::total()
{
    int t = 0;
    for (const auto &kv : counts)
        t += kv.second;
    return t;
}
void
Exporter::write_json(std::ostream &os)
{
    std::vector<std::string> keys;
    // neo-lint: allow(unordered-iteration-output) — collect-then-sort
    for (const auto &kv : counts)
        keys.push_back(kv.first);
    sort_strings(keys);
    for (const auto &k : keys)
        os << k;
}
