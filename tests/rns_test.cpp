#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/base_convert.h"
#include "rns/basis.h"
#include "rns/partition.h"
#include "rns/primes.h"

namespace neo {
namespace {

TEST(Primes, MillerRabinKnownValues)
{
    EXPECT_FALSE(is_prime(0));
    EXPECT_FALSE(is_prime(1));
    EXPECT_TRUE(is_prime(2));
    EXPECT_TRUE(is_prime(3));
    EXPECT_FALSE(is_prime(4));
    EXPECT_TRUE(is_prime(65537));
    EXPECT_FALSE(is_prime(65536));
    EXPECT_TRUE(is_prime(1000000007ULL));
    EXPECT_FALSE(is_prime(1000000007ULL * 998244353ULL));
    EXPECT_TRUE(is_prime(18446744073709551557ULL)); // largest 64-bit prime
}

TEST(Primes, GeneratedPrimesAreNttFriendly)
{
    const u64 n = 1 << 12;
    for (int bits : {30, 36, 48, 60}) {
        auto primes = generate_ntt_primes(bits, 5, n);
        ASSERT_EQ(primes.size(), 5u);
        for (u64 p : primes) {
            EXPECT_TRUE(is_prime(p));
            EXPECT_EQ(bit_size(p), bits);
            EXPECT_EQ((p - 1) % (2 * n), 0u);
        }
        // Distinct.
        for (size_t i = 0; i < primes.size(); ++i)
            for (size_t j = i + 1; j < primes.size(); ++j)
                EXPECT_NE(primes[i], primes[j]);
    }
}

TEST(Primes, AvoidListRespected)
{
    const u64 n = 1 << 10;
    auto first = generate_ntt_primes(36, 3, n);
    auto second = generate_ntt_primes(36, 3, n, first);
    for (u64 p : second)
        for (u64 a : first)
            EXPECT_NE(p, a);
}

TEST(Primes, PrimitiveRootHasExactOrder)
{
    auto primes = generate_ntt_primes(36, 2, 1 << 12);
    for (u64 q : primes) {
        const u64 two_n = 2ULL << 12;
        u64 g = find_primitive_root(q, two_n);
        EXPECT_EQ(pow_mod(g, two_n, q), 1u);
        EXPECT_EQ(pow_mod(g, two_n / 2, q), q - 1);
    }
}

TEST(Modulus, MulAddSubPow)
{
    auto primes = generate_ntt_primes(48, 1, 1 << 10);
    Modulus q(primes[0]);
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        u64 a = rng.uniform(q.value());
        u64 b = rng.uniform(q.value());
        EXPECT_EQ(q.mul(a, b), mul_mod(a, b, q.value()));
        EXPECT_EQ(q.add(a, b), (a + b) % q.value());
        EXPECT_EQ(q.sub(a, q.add(a, b)),
                  b == 0 ? 0 : q.value() - b);
    }
    EXPECT_EQ(q.mul(q.inv(12345), 12345), 1u);
}

TEST(Modulus, BarrettMultiplicationMatchesExact)
{
    Rng rng(7);
    for (int bits : {30, 36, 48, 60, 62}) {
        auto primes = generate_ntt_primes(bits, 1, 1 << 10);
        Modulus q(primes[0]);
        for (int i = 0; i < 500; ++i) {
            u64 a = rng.uniform(q.value());
            u64 b = rng.uniform(q.value());
            EXPECT_EQ(q.mul_barrett(a, b), q.mul(a, b))
                << "bits=" << bits << " a=" << a << " b=" << b;
        }
        // Extremes.
        EXPECT_EQ(q.mul_barrett(q.value() - 1, q.value() - 1),
                  q.mul(q.value() - 1, q.value() - 1));
        EXPECT_EQ(q.mul_barrett(0, q.value() - 1), 0u);
        EXPECT_EQ(q.mul_barrett(1, 1), 1u);
    }
}

TEST(Modulus, BarrettReduce128Range)
{
    auto primes = generate_ntt_primes(48, 1, 1 << 10);
    Modulus q(primes[0]);
    Rng rng(8);
    for (int i = 0; i < 300; ++i) {
        // Any x < q * 2^64.
        u128 x = (static_cast<u128>(rng.uniform(q.value())) << 64) ^
                 rng.next();
        EXPECT_EQ(q.barrett_reduce(x),
                  static_cast<u64>(x % q.value()));
    }
}

TEST(Modulus, ShoupMultiplication)
{
    auto primes = generate_ntt_primes(60, 1, 1 << 10);
    Modulus q(primes[0]);
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        u64 w = rng.uniform(q.value());
        u64 ws = shoup_precompute(w, q.value());
        u64 a = rng.uniform(q.value());
        EXPECT_EQ(mul_shoup(a, w, ws, q.value()), q.mul(a, w));
    }
}

class RnsBasisTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RnsBasisTest, PuncturedProductsConsistent)
{
    const int bits = GetParam();
    auto primes = generate_ntt_primes(bits, 4, 1 << 10);
    RnsBasis basis(primes);
    EXPECT_EQ(basis.size(), 4u);
    EXPECT_NEAR(basis.log2_product(), 4.0 * bits, 4.0);
    for (size_t i = 0; i < basis.size(); ++i) {
        // (B/b_i) * punc_inv(i) == 1 mod b_i.
        u64 prod = basis.punc_prod_mod(i, basis[i]);
        EXPECT_EQ(basis[i].mul(prod, basis.punc_inv(i)), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(WordSizes, RnsBasisTest,
                         ::testing::Values(30, 36, 48, 60));

TEST(RnsBasis, SliceAndConcat)
{
    auto primes = generate_ntt_primes(36, 6, 1 << 10);
    RnsBasis basis(primes);
    RnsBasis lo = basis.slice(0, 4);
    RnsBasis hi = basis.slice(4, 2);
    RnsBasis back = lo.concat(hi);
    EXPECT_EQ(back.size(), 6u);
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(back[i].value(), basis[i].value());
    EXPECT_THROW(basis.slice(4, 4), std::invalid_argument);
    EXPECT_THROW(lo.concat(lo), std::invalid_argument);
}

TEST(BaseConverter, ApproxConversionIsCorrectUpToBMultiple)
{
    auto p1 = generate_ntt_primes(30, 3, 1 << 10);
    auto p2 = generate_ntt_primes(31, 3, 1 << 10);
    RnsBasis from(p1), to(p2);
    BaseConverter conv(from, to);
    Rng rng(3);
    const size_t n = 16;

    // Build random values < B as RNS residues.
    std::vector<u64> in(3 * n), out(3 * n);
    std::vector<u128> truth(n);
    u128 big = 1;
    for (u64 p : p1)
        big *= p;
    for (size_t l = 0; l < n; ++l) {
        u128 v = (static_cast<u128>(rng.next()) << 32) ^ rng.next();
        v %= big;
        truth[l] = v;
        for (size_t i = 0; i < 3; ++i)
            in[i * n + l] = static_cast<u64>(v % p1[i]);
    }
    conv.convert_approx(in.data(), n, out.data());
    for (size_t l = 0; l < n; ++l) {
        for (size_t j = 0; j < 3; ++j) {
            u64 got = out[j * n + l];
            // got == truth + u*B mod t_j for some 0 <= u < 3.
            bool ok = false;
            for (u64 u = 0; u < 3; ++u) {
                u128 cand = (truth[l] + u * big) % p2[j];
                if (got == static_cast<u64>(cand))
                    ok = true;
            }
            EXPECT_TRUE(ok) << "coef " << l << " limb " << j;
        }
    }
}

TEST(BaseConverter, ExactConversionRecoversCenteredValue)
{
    auto p1 = generate_ntt_primes(30, 3, 1 << 10);
    auto p2 = generate_ntt_primes(31, 4, 1 << 10);
    RnsBasis from(p1), to(p2);
    BaseConverter conv(from, to);
    Rng rng(4);
    const size_t n = 64;

    u128 big = 1;
    for (u64 p : p1)
        big *= p;

    std::vector<u64> in(3 * n), out(4 * n);
    std::vector<i128> truth(n);
    for (size_t l = 0; l < n; ++l) {
        // Centered values spanning nearly the full (-B/2, B/2) range.
        u128 mag = ((static_cast<u128>(rng.next()) << 32) ^ rng.next()) %
                   (big / 2 - 1);
        i128 v = (rng.next() & 1) ? -static_cast<i128>(mag)
                                  : static_cast<i128>(mag);
        truth[l] = v;
        u128 vmod = v < 0 ? big - static_cast<u128>(-v) : static_cast<u128>(v);
        for (size_t i = 0; i < 3; ++i)
            in[i * n + l] = static_cast<u64>(vmod % p1[i]);
    }
    conv.convert_exact(in.data(), n, out.data());
    for (size_t l = 0; l < n; ++l) {
        for (size_t j = 0; j < 4; ++j) {
            i128 t = truth[l] % static_cast<i128>(p2[j]);
            if (t < 0)
                t += p2[j];
            EXPECT_EQ(out[j * n + l], static_cast<u64>(t))
                << "coef " << l << " limb " << j;
        }
    }
}

TEST(BaseConverter, ExactConversionZeroAndEdges)
{
    auto p1 = generate_ntt_primes(36, 2, 1 << 10);
    auto p2 = generate_ntt_primes(36, 2, 1 << 10, p1);
    RnsBasis from(p1), to(p2);
    BaseConverter conv(from, to);
    const size_t n = 4;
    std::vector<u64> in(2 * n, 0), out(2 * n, 99);
    // coefficient 1: value 1; coefficient 2: value -1 (i.e., B-1).
    in[0 * n + 1] = 1;
    in[1 * n + 1] = 1;
    in[0 * n + 2] = p1[0] - 1;
    in[1 * n + 2] = p1[1] - 1;
    conv.convert_exact(in.data(), n, out.data());
    for (size_t j = 0; j < 2; ++j) {
        EXPECT_EQ(out[j * n + 0], 0u);
        EXPECT_EQ(out[j * n + 1], 1u);
        EXPECT_EQ(out[j * n + 2], p2[j] - 1);
    }
}

TEST(Partition, GroupsCoverRange)
{
    auto groups = make_partition(10, 4);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].first, 0u);
    EXPECT_EQ(groups[0].count, 4u);
    EXPECT_EQ(groups[2].first, 8u);
    EXPECT_EQ(groups[2].count, 2u);
    EXPECT_EQ(group_of(groups, 0), 0u);
    EXPECT_EQ(group_of(groups, 7), 1u);
    EXPECT_EQ(group_of(groups, 9), 2u);
}

TEST(Partition, ExactDivision)
{
    auto groups = make_partition(36, 4);
    EXPECT_EQ(groups.size(), 9u);
    for (const auto &g : groups)
        EXPECT_EQ(g.count, 4u);
}

} // namespace
} // namespace neo
