/**
 * neo::tune — the per-site engine autotuner's contracts:
 *  - the `neo.tune/1` document round-trips (to_json -> parse ->
 *    to_json byte-identical) and matches the committed golden file,
 *  - tuning is deterministic across repeated runs and worker-thread
 *    counts (the table is model-driven, never wall-clock-driven),
 *  - an autotuned pipeline run is bit-identical to every fixed engine
 *    and to the reference keyswitch (the tuner only chooses which
 *    correct engine runs), and records its per-site decisions as
 *    tune.site.* counters,
 *  - the tuned mix dominates: modeled keyswitch time at every level
 *    is never slower than the best uniform engine (the neo.bench/1
 *    gate's invariant),
 *  - the checked-in neo.tune.json is exactly what the tuner emits
 *    today (freshness), and
 *  - the deprecated PipelineEngines surface still compiles and agrees
 *    with the ExecPolicy path.
 */
#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/backends.h"
#include "ckks/keygen.h"
#include "ckks/keyswitch.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "neo/engine.h"
#include "neo/pipeline.h"
#include "obs/obs.h"
#include "prof/prof.h"
#include "tune/tuner.h"
#include "tune/tuning_table.h"

using namespace neo;
using namespace neo::ckks;

namespace {

CkksParams
test_params()
{
    return CkksParams::test_params(256, 5, 2);
}

tune::TuningTable
tuned_table()
{
    return tune::Tuner().tune(test_params());
}

/// ModelConfig that dispatches stages through @p table (fallback
/// @p fb), mirroring what neo::model_config builds for an auto policy.
model::ModelConfig
auto_config(const tune::TuningTable &table, const CkksParams &params,
            model::MatMulEngine fb)
{
    model::ModelConfig cfg;
    cfg.stage_engine = [&table, d_num = params.d_num, n = params.n,
                        fb](std::string_view st, size_t lvl) {
        const auto id = table.lookup(st, lvl, d_num, n);
        return id ? EngineRegistry::model_engine(*id) : fb;
    };
    return cfg;
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

RnsPoly
random_eval_poly(const CkksContext &ctx, size_t level, u64 seed)
{
    Rng rng(seed);
    RnsPoly p(ctx.n(), ctx.active_mods(level), PolyForm::eval);
    for (size_t i = 0; i < p.limbs(); ++i)
        for (size_t l = 0; l < p.n(); ++l)
            p.limb(i)[l] = rng.uniform(p.modulus(i).value());
    return p;
}

bool
poly_eq(const RnsPoly &a, const RnsPoly &b)
{
    if (a.limbs() != b.limbs() || a.n() != b.n())
        return false;
    return std::equal(a.data(), a.data() + a.limbs() * a.n(), b.data());
}

} // namespace

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

TEST(TuneTable, JsonRoundTripIsByteIdentical)
{
    const auto table = tuned_table();
    ASSERT_FALSE(table.empty());
    const std::string doc = table.to_json();
    const auto reparsed = tune::TuningTable::from_json(doc);
    EXPECT_EQ(reparsed.size(), table.size());
    EXPECT_EQ(reparsed.to_json(), doc);
    // Lookups survive the round trip.
    for (const auto &e : table.entries()) {
        const auto got = reparsed.lookup(e.stage, e.level, e.d_num, e.n);
        ASSERT_TRUE(got.has_value()) << e.stage << " L" << e.level;
        EXPECT_EQ(*got, e.engine) << e.stage << " L" << e.level;
    }
}

TEST(TuneTable, EntriesCarryScoresForEveryEngine)
{
    const auto table = tuned_table();
    for (const auto &e : table.entries()) {
        ASSERT_EQ(e.scores.size(), EngineRegistry::ids().size())
            << e.stage << " L" << e.level;
        // The decision must be one of the scored engines, and no
        // scored engine may be negative.
        bool found = false;
        for (const auto &s : e.scores) {
            EXPECT_GE(s.seconds, 0.0);
            found = found || s.engine == e.engine;
        }
        EXPECT_TRUE(found) << e.stage << " L" << e.level;
    }
}

TEST(TuneTable, RejectsWrongSchemaAndBadEngine)
{
    EXPECT_THROW(tune::TuningTable::from_json(
                     "{\"schema\":\"neo.tune/2\",\"entries\":[]}"),
                 std::invalid_argument);
    EXPECT_THROW(
        tune::TuningTable::from_json(
            "{\"schema\":\"neo.tune/1\",\"entries\":[{\"stage\":\"ip\","
            "\"level\":0,\"d_num\":2,\"n\":256,\"engine\":\"warp\"}]}"),
        std::invalid_argument);
}

TEST(TuneTable, MatchesGoldenFile)
{
    // The committed golden pins the serialized form: field names,
    // ordering, number formatting and the tuner's decisions at the
    // functional test-scale parameters. When a model change moves a
    // decision on purpose, regenerate by writing
    // tune::Tuner().tune(CkksParams::test_params(256, 5, 2)) to the
    // golden path (see EXPERIMENTS.md).
    const std::string golden =
        read_file(std::string(NEO_TEST_DATA_DIR) +
                  "/tune_table_golden.json");
    EXPECT_EQ(tuned_table().to_json() + "\n", golden);
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

TEST(TuneDeterminism, RepeatedRunsAndThreadCountsAgree)
{
    const std::string reference = tuned_table().to_json();
    EXPECT_EQ(tuned_table().to_json(), reference);
    for (size_t threads : {1u, 2u, 7u, 16u}) {
        ThreadPool::set_global_threads(threads);
        EXPECT_EQ(tuned_table().to_json(), reference)
            << "threads=" << threads;
    }
    ThreadPool::set_global_threads(0);
}

// ---------------------------------------------------------------------
// Differential: auto vs fixed engines vs reference
// ---------------------------------------------------------------------

TEST(TuneDifferential, AutoBitIdenticalToFixedAndReference)
{
    const CkksParams params = test_params();
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 11);
    const SecretKey sk = keygen.secret_key();
    const KlssEvalKey rlk = keygen.to_klss(keygen.relin_key(sk));

    const auto table = tuned_table();
    const ExecPolicy auto_policy = table.policy();
    ASSERT_TRUE(auto_policy.is_auto());
    ASSERT_TRUE(auto_policy.site_engine != nullptr);

    for (size_t level : {5u, 3u, 1u}) {
        RnsPoly d2 = random_eval_poly(ctx, level, 9000 + level);
        const auto ref = keyswitch_klss(d2, rlk, ctx);
        for (size_t threads : {1u, 2u, 7u, 16u}) {
            ThreadPool::set_global_threads(threads);
            const auto got =
                keyswitch_klss_pipeline(d2, rlk, ctx, auto_policy);
            EXPECT_TRUE(poly_eq(got.first, ref.first))
                << "level=" << level << " threads=" << threads;
            EXPECT_TRUE(poly_eq(got.second, ref.second))
                << "level=" << level << " threads=" << threads;
            for (const EngineId id : EngineRegistry::ids()) {
                const auto fixed = keyswitch_klss_pipeline(
                    d2, rlk, ctx, ExecPolicy::fixed(id));
                EXPECT_TRUE(poly_eq(fixed.first, got.first))
                    << EngineRegistry::name(id) << " level=" << level
                    << " threads=" << threads;
                EXPECT_TRUE(poly_eq(fixed.second, got.second))
                    << EngineRegistry::name(id) << " level=" << level
                    << " threads=" << threads;
            }
        }
    }
    ThreadPool::set_global_threads(0);
}

TEST(TuneDifferential, AutoRunRecordsSiteCountersFixedRunDoesNot)
{
    const CkksParams params = test_params();
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 13);
    const SecretKey sk = keygen.secret_key();
    const KlssEvalKey rlk = keygen.to_klss(keygen.relin_key(sk));
    RnsPoly d2 = random_eval_poly(ctx, 5, 4242);

    const auto table = tuned_table();
    u64 site_counters = 0;
    {
        obs::Scope scope;
        (void)keyswitch_klss_pipeline(d2, rlk, ctx, table.policy());
        for (const auto &[name, value] : scope.registry().counters())
            if (name.rfind("tune.site.", 0) == 0)
                site_counters += value;
    }
    // One decision per engine-dispatched stage of the pipeline.
    EXPECT_EQ(site_counters, 6u);

    obs::Scope scope;
    (void)keyswitch_klss_pipeline(d2, rlk, ctx,
                                  ExecPolicy::fixed(EngineId::fp64_tcu));
    for (const auto &[name, value] : scope.registry().counters())
        EXPECT_NE(name.rfind("tune.site.", 0), 0u) << name;
}

// ---------------------------------------------------------------------
// Dominance: the bench gate's invariant, checked per level
// ---------------------------------------------------------------------

TEST(TuneDominance, TunedKeyswitchNeverSlowerThanBestUniform)
{
    for (const CkksParams &params :
         {test_params(), baselines::make_neo('C').params}) {
        const auto table = tune::Tuner().tune(params);
        const auto cfg =
            auto_config(table, params, model::MatMulEngine::tcu_fp64);
        const model::KernelModel tuned(params, cfg);
        for (size_t level = 0; level <= params.max_level; ++level) {
            double best_uniform = std::numeric_limits<double>::max();
            for (const EngineId id : EngineRegistry::ids()) {
                model::ModelConfig ucfg;
                ucfg.engine = EngineRegistry::model_engine(id);
                best_uniform = std::min(
                    best_uniform,
                    model::KernelModel(params, ucfg)
                        .keyswitch_time(level));
            }
            const double t = tuned.keyswitch_time(level);
            EXPECT_LE(t, best_uniform * (1.0 + 1e-9))
                << "N=" << params.n << " level=" << level;
        }
    }
}

// ---------------------------------------------------------------------
// Freshness: the checked-in table is what the tuner emits today
// ---------------------------------------------------------------------

#ifdef NEO_TUNE_TABLE
TEST(TuneFreshness, CheckedInTableMatchesTunerOutput)
{
    const std::string checked_in = read_file(NEO_TUNE_TABLE);
    EXPECT_EQ(prof::tuning_table_for_workloads().to_json() + "\n",
              checked_in)
        << "neo.tune.json is stale; regenerate with "
           "`neo-prof --tune --tuning-table neo.tune.json`";
}
#endif

// ---------------------------------------------------------------------
// Device-pinned decisions (multi-device sharding)
// ---------------------------------------------------------------------

TEST(TuneDevices, PinnedEntriesWinOverAgnosticAndRoundTrip)
{
    tune::TuningTable table;
    tune::SiteDecision agnostic;
    agnostic.stage = "ip";
    agnostic.level = 4;
    agnostic.d_num = 2;
    agnostic.n = 256;
    agnostic.engine = EngineId::fp64_tcu;
    table.add(agnostic);
    tune::SiteDecision pinned = agnostic;
    pinned.devices = 2;
    pinned.engine = EngineId::int8_tcu;
    table.add(pinned);

    // Historical lookups (devices omitted) see only the agnostic
    // entry; a 2-device run sees its pinned decision; a 4-device run
    // falls back to agnostic.
    EXPECT_EQ(table.lookup("ip", 4, 2, 256), EngineId::fp64_tcu);
    EXPECT_EQ(table.lookup("ip", 4, 2, 256, 2), EngineId::int8_tcu);
    EXPECT_EQ(table.lookup("ip", 4, 2, 256, 4), EngineId::fp64_tcu);

    // The `devices` key serializes only when nonzero, and survives a
    // round trip with the same semantics.
    const std::string doc = table.to_json();
    EXPECT_NE(doc.find("\"devices\": 2"), std::string::npos);
    const auto reparsed = tune::TuningTable::from_json(doc);
    EXPECT_EQ(reparsed.to_json(), doc);
    EXPECT_EQ(reparsed.lookup("ip", 4, 2, 256, 2), EngineId::int8_tcu);
    EXPECT_EQ(reparsed.lookup("ip", 4, 2, 256), EngineId::fp64_tcu);
}

TEST(TuneDevices, AgnosticTablesAreUnchangedOnDisk)
{
    // A table with no pinned entries must serialize exactly as before
    // the devices field existed (no "devices" key anywhere): the
    // checked-in neo.tune.json and its golden stay byte-identical.
    const auto table = tuned_table();
    for (const auto &e : table.entries())
        EXPECT_EQ(e.devices, 0u);
    EXPECT_EQ(table.to_json().find("\"devices\""), std::string::npos);
}

TEST(TuneDevices, PolicyResolvesPerDeviceCount)
{
    tune::TuningTable table;
    tune::SiteDecision pinned;
    pinned.stage = "ip";
    pinned.level = 4;
    pinned.d_num = 2;
    pinned.n = 256;
    pinned.devices = 2;
    pinned.engine = EngineId::scalar;
    table.add(pinned);

    ExecPolicy base;
    base.engine = EngineId::fp64_tcu;
    base.devices = 2;
    const auto policy = table.policy(base);
    SiteKey site{"ip", 4, 2, 256, 0.0, 2};
    EXPECT_EQ(policy.engine_at(site), EngineId::scalar);
    // The same site on one device misses the pinned entry and falls
    // back to the base engine.
    site.devices = 1;
    EXPECT_EQ(policy.engine_at(site), EngineId::fp64_tcu);
}

// ---------------------------------------------------------------------
// Deprecated surface: compiles (with a suppressed warning) and agrees
// ---------------------------------------------------------------------

TEST(TuneCompat, DeprecatedPipelineOverloadAgreesWithPolicy)
{
    const CkksParams params = test_params();
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 17);
    const SecretKey sk = keygen.secret_key();
    const KlssEvalKey rlk = keygen.to_klss(keygen.relin_key(sk));
    RnsPoly d2 = random_eval_poly(ctx, 4, 777);

    const auto via_policy = keyswitch_klss_pipeline(
        d2, rlk, ctx, ExecPolicy::fixed(EngineId::scalar, /*fuse=*/true));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const auto via_engines = keyswitch_klss_pipeline(
        d2, rlk, ctx, PipelineEngines::from_name("scalar"), true);
#pragma GCC diagnostic pop
    EXPECT_TRUE(poly_eq(via_policy.first, via_engines.first));
    EXPECT_TRUE(poly_eq(via_policy.second, via_engines.second));
}
