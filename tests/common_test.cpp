#include <gtest/gtest.h>

#include "common/check.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/table.h"

namespace neo {
namespace {

TEST(MathUtil, Pow2Helpers)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(65536));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_EQ(log2_exact(1), 0);
    EXPECT_EQ(log2_exact(65536), 16);
    EXPECT_EQ(ceil_div(7, 3), 3u);
    EXPECT_EQ(ceil_div(6, 3), 2u);
    EXPECT_EQ(bit_size(0), 0);
    EXPECT_EQ(bit_size(1), 1);
    EXPECT_EQ(bit_size((1ULL << 35) + 5), 36);
}

TEST(MathUtil, ReverseBits)
{
    EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
    EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
    for (u64 x = 0; x < 64; ++x)
        EXPECT_EQ(reverse_bits(reverse_bits(x, 6), 6), x);
}

TEST(MathUtil, ModularArithmetic)
{
    const u64 q = (1ULL << 36) - 5; // not prime; fine for add/sub/mul
    EXPECT_EQ(add_mod(q - 1, 1, q), 0u);
    EXPECT_EQ(sub_mod(0, 1, q), q - 1);
    EXPECT_EQ(mul_mod(q - 1, q - 1, q), 1u);
    const u64 p = 576460752303421441ULL; // 2^59.something prime
    EXPECT_EQ(mul_mod(pow_mod(3, p - 1, p), 1, p), 1u) << "Fermat";
    EXPECT_EQ(mul_mod(inv_mod(12345, p), 12345, p), 1u);
}

TEST(MathUtil, CenteredRepresentatives)
{
    const u64 q = 101;
    EXPECT_EQ(to_centered(0, q), 0);
    EXPECT_EQ(to_centered(50, q), 50);
    EXPECT_EQ(to_centered(51, q), -50);
    EXPECT_EQ(to_centered(100, q), -1);
    for (u64 x = 0; x < q; ++x)
        EXPECT_EQ(from_centered(to_centered(x, q), q), x);
    EXPECT_EQ(from_centered(-1, q), 100u);
    EXPECT_EQ(from_centered(-202, q), 0u);
}

TEST(Check, ThrowsProperTypes)
{
    EXPECT_THROW(NEO_CHECK(false, "boom"), std::invalid_argument);
    EXPECT_THROW(NEO_ASSERT(false, "boom"), std::logic_error);
    EXPECT_NO_THROW(NEO_CHECK(true, ""));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniform(97), 97u);
}

TEST(Rng, TernaryValues)
{
    Rng rng(7);
    const u64 q = 1000003;
    int zeros = 0;
    for (int i = 0; i < 4000; ++i) {
        u64 t = rng.ternary(q);
        EXPECT_TRUE(t == 0 || t == 1 || t == q - 1);
        zeros += (t == 0);
    }
    // P(0) = 1/2: expect near 2000.
    EXPECT_GT(zeros, 1600);
    EXPECT_LT(zeros, 2400);
}

TEST(Rng, GaussianCentered)
{
    Rng rng(11);
    const u64 q = 1ULL << 40;
    double sum = 0, sumsq = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        i64 v = to_centered(rng.gaussian(q), q);
        sum += static_cast<double>(v);
        sumsq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(sum / trials, 0.0, 0.2);
    EXPECT_NEAR(sumsq / trials, 3.2 * 3.2, 1.0);
}

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xx", "y"});
    std::string s = t.str();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("xx"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(format_time(2.5e-9), "2.5 ns");
    EXPECT_EQ(format_time(3.25e-5), "32.50 us");
    EXPECT_EQ(format_time(0.5), "500.00 ms");
    EXPECT_EQ(format_time(12.0), "12.000 s");
    EXPECT_EQ(format_bytes(512), "512 B");
    EXPECT_EQ(format_bytes(2048), "2.0 KB");
}

} // namespace
} // namespace neo
