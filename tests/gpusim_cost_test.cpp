/**
 * Invariants of the roofline cost decomposition (gpusim/kernel_cost):
 * the scalar time() can never disagree with its CostBreakdown, the
 * breakdown obeys the roofline identity, negative work is clamped,
 * and schedule-level composition preserves the same structure.
 */
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "gpusim/kernel_cost.h"

using namespace neo;
using gpusim::Bound;
using gpusim::CostBreakdown;
using gpusim::KernelCost;

namespace {

gpusim::DeviceSpec
dev()
{
    return gpusim::DeviceSpec::a100();
}

KernelCost
sample_kernel(double scale = 1.0)
{
    KernelCost k;
    k.cuda_modmul = 1e6 * scale;
    k.cuda_modadd = 3e5 * scale;
    k.cuda_int_ops = 2e5 * scale;
    k.tcu_fp64_macs = 4e6 * scale;
    k.tcu_int8_macs = 1e5 * scale;
    k.bytes_read = 6e6 * scale;
    k.bytes_written = 2e6 * scale;
    k.launches = 3;
    return k;
}

} // namespace

TEST(CostBreakdown, RooflineIdentityHoldsByConstruction)
{
    const auto d = dev();
    for (double scale : {1e-3, 1.0, 1e3}) {
        for (bool overlap : {false, true}) {
            const CostBreakdown b =
                sample_kernel(scale).breakdown(d, overlap);
            EXPECT_DOUBLE_EQ(b.total_s(),
                             std::max(b.compute_s, b.memory_s) +
                                 b.launch_s);
        }
    }
}

TEST(CostBreakdown, TimeEqualsBreakdownTotal)
{
    const auto d = dev();
    const KernelCost k = sample_kernel();
    EXPECT_DOUBLE_EQ(k.time(d, false), k.breakdown(d, false).total_s());
    EXPECT_DOUBLE_EQ(k.time(d, true), k.breakdown(d, true).total_s());
}

TEST(CostBreakdown, OverlapTakesMaxOfComponentPhases)
{
    const auto d = dev();
    const KernelCost k = sample_kernel();
    const double cuda = k.cuda_time(d);
    const double tcu = k.tcu_time(d);
    EXPECT_DOUBLE_EQ(k.breakdown(d, false).compute_s, cuda + tcu);
    EXPECT_DOUBLE_EQ(k.breakdown(d, true).compute_s,
                     std::max(cuda, tcu));
    EXPECT_LE(k.time(d, true), k.time(d, false));
}

TEST(CostBreakdown, NegativeWorkIsClampedToZero)
{
    const auto d = dev();
    KernelCost k;
    k.cuda_modmul = -1e9;
    k.tcu_fp64_macs = -1e9;
    k.bytes_read = -5;
    k.bytes_written = -7;
    k.launches = -2;
    const CostBreakdown b = k.breakdown(d, false);
    EXPECT_EQ(b.compute_s, 0.0);
    EXPECT_EQ(b.memory_s, 0.0);
    EXPECT_EQ(b.launch_s, 0.0);
    EXPECT_EQ(b.bytes, 0.0);
    EXPECT_EQ(b.macs, 0.0);
    EXPECT_EQ(b.mod_ops, 0.0);
    EXPECT_EQ(b.int_ops, 0.0);
    EXPECT_EQ(b.total_s(), 0.0);
}

TEST(CostBreakdown, BoundClassification)
{
    CostBreakdown b;
    b.compute_s = 2;
    b.memory_s = 1;
    b.launch_s = 0;
    EXPECT_EQ(b.bound(), Bound::compute);

    b.compute_s = 1;
    b.memory_s = 2;
    EXPECT_EQ(b.bound(), Bound::memory);

    b.launch_s = 5; // exceeds both roofline terms
    EXPECT_EQ(b.bound(), Bound::launch);

    b.launch_s = 2; // equal to the roof: roofline term wins
    EXPECT_EQ(b.bound(), Bound::memory);

    b.compute_s = b.memory_s = 1; // tie breaks to compute
    b.launch_s = 0;
    EXPECT_EQ(b.bound(), Bound::compute);
}

TEST(CostBreakdown, BoundNamesAreStable)
{
    EXPECT_STREQ(gpusim::bound_name(Bound::compute), "compute");
    EXPECT_STREQ(gpusim::bound_name(Bound::memory), "memory");
    EXPECT_STREQ(gpusim::bound_name(Bound::launch), "launch");
}

TEST(CostBreakdown, LaunchBoundKernelDetected)
{
    const auto d = dev();
    KernelCost k; // almost no work, one launch
    k.cuda_modadd = 1;
    k.launches = 1;
    const CostBreakdown b = k.breakdown(d, false);
    EXPECT_EQ(b.bound(), Bound::launch);
    EXPECT_GT(b.launch_s, std::max(b.compute_s, b.memory_s));
}

TEST(KernelCostAccumulate, OperatorPlusSumsAllFields)
{
    const KernelCost a = sample_kernel(1.0);
    const KernelCost b = sample_kernel(2.0);
    const KernelCost s = a + b;
    EXPECT_DOUBLE_EQ(s.cuda_modmul, a.cuda_modmul + b.cuda_modmul);
    EXPECT_DOUBLE_EQ(s.tcu_fp64_macs, a.tcu_fp64_macs + b.tcu_fp64_macs);
    EXPECT_DOUBLE_EQ(s.bytes(), a.bytes() + b.bytes());
    EXPECT_DOUBLE_EQ(s.launches, a.launches + b.launches);
}

TEST(RunSchedule, SerialSecondsAreSumOfPerKernelTimes)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1), sample_kernel(2),
                                  sample_kernel(0.5)};
    const auto r = gpusim::run_schedule(ks, d, false);
    double expect = 0, bytes = 0, launches = 0;
    for (const auto &k : ks) {
        expect += k.time(d, false);
        bytes += k.bytes();
        launches += k.launches;
    }
    EXPECT_DOUBLE_EQ(r.seconds, expect);
    EXPECT_DOUBLE_EQ(r.bytes, bytes);
    EXPECT_DOUBLE_EQ(r.launches, launches);
    // Serial: sum-of-max >= max-of-sum, so the phase fields only bound
    // seconds from below.
    EXPECT_GE(r.seconds,
              std::max(r.compute_s, r.memory_s) + r.launch_s - 1e-15);
}

TEST(RunSchedule, MultistreamObeysScheduleLevelRoofline)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1), sample_kernel(3)};
    const auto r = gpusim::run_schedule(ks, d, true);
    EXPECT_DOUBLE_EQ(r.seconds,
                     std::max(r.compute_s, r.memory_s) + r.launch_s);
    // Launch overhead is amortised across the two streams.
    EXPECT_DOUBLE_EQ(r.launch_s, r.launches * d.kernel_launch_s * 0.5);
    // Overlap can only help.
    EXPECT_LE(r.seconds, gpusim::run_schedule(ks, d, false).seconds);
}

TEST(RunSchedule, EmptyScheduleIsFree)
{
    const auto d = dev();
    for (bool ms : {false, true}) {
        const auto r = gpusim::run_schedule({}, d, ms);
        EXPECT_EQ(r.seconds, 0.0);
        EXPECT_EQ(r.bytes, 0.0);
        EXPECT_EQ(r.launches, 0.0);
    }
}

TEST(RunSchedule, ScheduleBoundMatchesBreakdownRule)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1)};
    const auto r = gpusim::run_schedule(ks, d, true);
    CostBreakdown b;
    b.compute_s = r.compute_s;
    b.memory_s = r.memory_s;
    b.launch_s = r.launch_s;
    EXPECT_EQ(r.bound(), b.bound());
}
