/**
 * Invariants of the roofline cost decomposition (gpusim/kernel_cost):
 * the scalar time() can never disagree with its CostBreakdown, the
 * breakdown obeys the roofline identity, negative work is clamped,
 * and schedule-level composition preserves the same structure.
 */
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/paper_params.h"
#include "gpusim/kernel_cost.h"
#include "neo/kernel_model.h"

using namespace neo;
using gpusim::Bound;
using gpusim::CostBreakdown;
using gpusim::KernelCost;

namespace {

gpusim::DeviceSpec
dev()
{
    return gpusim::DeviceSpec::a100();
}

KernelCost
sample_kernel(double scale = 1.0)
{
    KernelCost k;
    k.cuda_modmul = 1e6 * scale;
    k.cuda_modadd = 3e5 * scale;
    k.cuda_int_ops = 2e5 * scale;
    k.tcu_fp64_macs = 4e6 * scale;
    k.tcu_int8_macs = 1e5 * scale;
    k.bytes_read = 6e6 * scale;
    k.bytes_written = 2e6 * scale;
    k.launches = 3;
    return k;
}

} // namespace

TEST(CostBreakdown, RooflineIdentityHoldsByConstruction)
{
    const auto d = dev();
    for (double scale : {1e-3, 1.0, 1e3}) {
        for (bool overlap : {false, true}) {
            const CostBreakdown b =
                sample_kernel(scale).breakdown(d, overlap);
            EXPECT_DOUBLE_EQ(b.total_s(),
                             std::max(b.compute_s, b.memory_s) +
                                 b.launch_s);
        }
    }
}

TEST(CostBreakdown, TimeEqualsBreakdownTotal)
{
    const auto d = dev();
    const KernelCost k = sample_kernel();
    EXPECT_DOUBLE_EQ(k.time(d, false), k.breakdown(d, false).total_s());
    EXPECT_DOUBLE_EQ(k.time(d, true), k.breakdown(d, true).total_s());
}

TEST(CostBreakdown, OverlapTakesMaxOfComponentPhases)
{
    const auto d = dev();
    const KernelCost k = sample_kernel();
    const double cuda = k.cuda_time(d);
    const double tcu = k.tcu_time(d);
    EXPECT_DOUBLE_EQ(k.breakdown(d, false).compute_s, cuda + tcu);
    EXPECT_DOUBLE_EQ(k.breakdown(d, true).compute_s,
                     std::max(cuda, tcu));
    EXPECT_LE(k.time(d, true), k.time(d, false));
}

TEST(CostBreakdown, NegativeWorkIsClampedToZero)
{
    const auto d = dev();
    KernelCost k;
    k.cuda_modmul = -1e9;
    k.tcu_fp64_macs = -1e9;
    k.bytes_read = -5;
    k.bytes_written = -7;
    k.launches = -2;
    const CostBreakdown b = k.breakdown(d, false);
    EXPECT_EQ(b.compute_s, 0.0);
    EXPECT_EQ(b.memory_s, 0.0);
    EXPECT_EQ(b.launch_s, 0.0);
    EXPECT_EQ(b.bytes, 0.0);
    EXPECT_EQ(b.macs, 0.0);
    EXPECT_EQ(b.mod_ops, 0.0);
    EXPECT_EQ(b.int_ops, 0.0);
    EXPECT_EQ(b.total_s(), 0.0);
}

TEST(CostBreakdown, BoundClassification)
{
    CostBreakdown b;
    b.compute_s = 2;
    b.memory_s = 1;
    b.launch_s = 0;
    EXPECT_EQ(b.bound(), Bound::compute);

    b.compute_s = 1;
    b.memory_s = 2;
    EXPECT_EQ(b.bound(), Bound::memory);

    b.launch_s = 5; // exceeds both roofline terms
    EXPECT_EQ(b.bound(), Bound::launch);

    b.launch_s = 2; // equal to the roof: roofline term wins
    EXPECT_EQ(b.bound(), Bound::memory);

    b.compute_s = b.memory_s = 1; // tie breaks to compute
    b.launch_s = 0;
    EXPECT_EQ(b.bound(), Bound::compute);
}

TEST(CostBreakdown, BoundNamesAreStable)
{
    EXPECT_STREQ(gpusim::bound_name(Bound::compute), "compute");
    EXPECT_STREQ(gpusim::bound_name(Bound::memory), "memory");
    EXPECT_STREQ(gpusim::bound_name(Bound::launch), "launch");
}

TEST(CostBreakdown, LaunchBoundKernelDetected)
{
    const auto d = dev();
    KernelCost k; // almost no work, one launch
    k.cuda_modadd = 1;
    k.launches = 1;
    const CostBreakdown b = k.breakdown(d, false);
    EXPECT_EQ(b.bound(), Bound::launch);
    EXPECT_GT(b.launch_s, std::max(b.compute_s, b.memory_s));
}

TEST(KernelCostAccumulate, OperatorPlusSumsAllFields)
{
    const KernelCost a = sample_kernel(1.0);
    const KernelCost b = sample_kernel(2.0);
    const KernelCost s = a + b;
    EXPECT_DOUBLE_EQ(s.cuda_modmul, a.cuda_modmul + b.cuda_modmul);
    EXPECT_DOUBLE_EQ(s.tcu_fp64_macs, a.tcu_fp64_macs + b.tcu_fp64_macs);
    EXPECT_DOUBLE_EQ(s.bytes(), a.bytes() + b.bytes());
    EXPECT_DOUBLE_EQ(s.launches, a.launches + b.launches);
}

TEST(RunSchedule, SerialSecondsAreSumOfPerKernelTimes)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1), sample_kernel(2),
                                  sample_kernel(0.5)};
    const auto r = gpusim::run_schedule(ks, d, false);
    double expect = 0, bytes = 0, launches = 0;
    for (const auto &k : ks) {
        expect += k.time(d, false);
        bytes += k.bytes();
        launches += k.launches;
    }
    EXPECT_DOUBLE_EQ(r.seconds, expect);
    EXPECT_DOUBLE_EQ(r.bytes, bytes);
    EXPECT_DOUBLE_EQ(r.launches, launches);
    // Serial: sum-of-max >= max-of-sum, so the phase fields only bound
    // seconds from below.
    EXPECT_GE(r.seconds,
              std::max(r.compute_s, r.memory_s) + r.launch_s - 1e-15);
}

TEST(RunSchedule, MultistreamObeysScheduleLevelRoofline)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1), sample_kernel(3)};
    const auto r = gpusim::run_schedule(ks, d, true);
    EXPECT_DOUBLE_EQ(r.seconds,
                     std::max(r.compute_s, r.memory_s) + r.launch_s);
    // Launch overhead is amortised across the two streams.
    EXPECT_DOUBLE_EQ(r.launch_s, r.launches * d.kernel_launch_s * 0.5);
    // Overlap can only help.
    EXPECT_LE(r.seconds, gpusim::run_schedule(ks, d, false).seconds);
}

TEST(RunSchedule, EmptyScheduleIsFree)
{
    const auto d = dev();
    for (bool ms : {false, true}) {
        const auto r = gpusim::run_schedule({}, d, ms);
        EXPECT_EQ(r.seconds, 0.0);
        EXPECT_EQ(r.bytes, 0.0);
        EXPECT_EQ(r.launches, 0.0);
    }
}

TEST(RunSchedule, ScheduleBoundMatchesBreakdownRule)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1)};
    const auto r = gpusim::run_schedule(ks, d, true);
    CostBreakdown b;
    b.compute_s = r.compute_s;
    b.memory_s = r.memory_s;
    b.launch_s = r.launch_s;
    EXPECT_EQ(r.bound(), b.bound());
}

// ---------------------------------------------------------------------
// Graph capture: closed-form launch model and schedule composition
// ---------------------------------------------------------------------

TEST(GraphCapture, LaunchCostMatchesClosedForm)
{
    const auto d = dev();
    for (double n : {1.0, 3.0, 12.0, 100.0, 1e4}) {
        EXPECT_DOUBLE_EQ(d.graph_launch_s(n),
                         d.graph_replay_s +
                             n * d.graph_capture_per_kernel_s /
                                 d.graph_amortize_replays);
        // Strictly cheaper than per-kernel dispatch for every n >= 1 —
        // under serial launches AND under the multistream 0.5x
        // amortization — so graph capture can never hurt a schedule.
        EXPECT_LT(d.graph_launch_s(n), n * d.kernel_launch_s);
        EXPECT_LT(d.graph_launch_s(n), n * d.kernel_launch_s * 0.5);
    }
}

TEST(GraphCapture, OneTimeCaptureIsAmortizedAcrossReplays)
{
    auto d = dev();
    const double n = 12;
    // The per-replay cost splits into a fixed replay dispatch and the
    // capture cost spread over graph_amortize_replays reuses; doubling
    // the reuse count halves the capture share and leaves the replay
    // term alone.
    auto d2 = d;
    d2.graph_amortize_replays *= 2;
    EXPECT_DOUBLE_EQ(d2.graph_launch_s(n) - d2.graph_replay_s,
                     (d.graph_launch_s(n) - d.graph_replay_s) / 2);
    EXPECT_DOUBLE_EQ(d2.graph_launch_s(0), d2.graph_replay_s);
}

TEST(GraphCapture, ReplayCollapsesScheduleToOneLaunch)
{
    const auto d = dev();
    std::vector<KernelCost> ks = {sample_kernel(1), sample_kernel(2),
                                  sample_kernel(0.5)};
    for (bool ms : {false, true}) {
        SCOPED_TRACE(ms ? "multistream" : "serial");
        const auto base =
            gpusim::run_schedule(ks, d, gpusim::SchedulePolicy{ms, false});
        const auto r =
            gpusim::run_schedule(ks, d, gpusim::SchedulePolicy{ms, true});
        EXPECT_DOUBLE_EQ(r.launches, 1.0);
        EXPECT_DOUBLE_EQ(r.graph_launches, 1.0);
        EXPECT_DOUBLE_EQ(r.captured_launches, base.launches);
        EXPECT_DOUBLE_EQ(r.launch_s, d.graph_launch_s(base.launches));
        // Only the launch term changes: compute/memory phases and
        // bytes are the same kernels either way.
        EXPECT_DOUBLE_EQ(r.compute_s, base.compute_s);
        EXPECT_DOUBLE_EQ(r.memory_s, base.memory_s);
        EXPECT_DOUBLE_EQ(r.bytes, base.bytes);
        EXPECT_DOUBLE_EQ(r.seconds,
                         base.seconds - base.launch_s + r.launch_s);
        EXPECT_LT(r.seconds, base.seconds);
    }
}

TEST(GraphCapture, EmptyScheduleCapturesNothing)
{
    const auto d = dev();
    for (bool ms : {false, true}) {
        const auto r = gpusim::run_schedule(
            {}, d, gpusim::SchedulePolicy{ms, true});
        EXPECT_EQ(r.seconds, 0.0);
        EXPECT_EQ(r.launches, 0.0);
        EXPECT_EQ(r.graph_launches, 0.0);
        EXPECT_EQ(r.captured_launches, 0.0);
    }
}

TEST(GraphCapture, MonotoneOverTable7KernelMixes)
{
    // Graph-on <= graph-off for every Table 7 operation's kernel mix,
    // under both scheduling modes — capture is a pure launch-side
    // optimization and must never regress a schedule.
    const auto params = ckks::paper_set('C');
    const model::ModelConfig cfg; // Neo defaults, graph decided below
    const model::KernelModel m(params, cfg);
    const auto named_costs = [](const auto &named) {
        std::vector<KernelCost> out;
        for (const auto &nk : named)
            out.push_back(nk.cost);
        return out;
    };
    for (size_t level : {params.max_level, size_t{20}, size_t{5}}) {
        const std::vector<std::vector<KernelCost>> mixes = {
            m.keyswitch_kernels(level),
            named_costs(m.hmult_kernels_named(level)),
            named_costs(m.hrotate_kernels_named(level)),
        };
        for (size_t i = 0; i < mixes.size(); ++i) {
            for (bool ms : {false, true}) {
                SCOPED_TRACE(::testing::Message()
                             << "mix=" << i << " level=" << level
                             << " ms=" << ms);
                const auto off = gpusim::run_schedule(
                    mixes[i], cfg.device,
                    gpusim::SchedulePolicy{ms, false});
                const auto on = gpusim::run_schedule(
                    mixes[i], cfg.device,
                    gpusim::SchedulePolicy{ms, true});
                EXPECT_LE(on.seconds, off.seconds);
                EXPECT_DOUBLE_EQ(on.launches, 1.0);
                EXPECT_GT(off.launches, 1.0);
            }
        }
    }
}
