/**
 * Multi-device sharded keyswitch — differential suite (ctest label
 * `shard`).
 *
 * Sharding re-orders nothing and re-rounds nothing: a sharded run is
 * the same kernels over contiguous disjoint index ranges in
 * device-major order, so every output bit must match the
 * single-device pipeline and the reference keyswitch. These tests pin
 * that down, plus the cost-model side:
 *
 *   1. the shard partition rule covers every index exactly once, for
 *      any (total, devices);
 *   2. keyswitch_klss_pipeline with devices ∈ {1, 2, 4} is
 *      bit-identical to the reference across 21 (level, d_num,
 *      engine) configurations and 1/2/7/16 worker threads;
 *   3. ckks::mod_down is bit-identical under device-sharded limb
 *      loops, fused and unfused;
 *   4. the comm.* counters a sharded profile records equal the
 *      analytic limb-partition formulas, byte for byte;
 *   5. the modeled crossover exists: at paper scale, a ≥2-device
 *      NVLink shard beats the single-device schedule, while the PCIe
 *      ring does not enjoy the same gain (the fig_multi_device
 *      story); attribution rows sum to the makespan exactly.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "ckks/keygen.h"
#include "ckks/keyswitch.h"
#include "ckks/paper_params.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "gpusim/topology.h"
#include "neo/pipeline.h"
#include "neo/shard.h"
#include "obs/obs.h"
#include "rns/partition.h"

namespace neo {
namespace {

using namespace ckks;

bool
poly_eq(const RnsPoly &a, const RnsPoly &b)
{
    if (a.n() != b.n() || a.limbs() != b.limbs())
        return false;
    for (size_t i = 0; i < a.limbs(); ++i)
        if (!std::equal(a.limb(i), a.limb(i) + a.n(), b.limb(i)))
            return false;
    return true;
}

RnsPoly
random_eval_poly(const CkksContext &ctx, size_t level, u64 seed)
{
    Rng rng(seed);
    RnsPoly p(ctx.n(), ctx.active_mods(level), PolyForm::eval);
    for (size_t i = 0; i < p.limbs(); ++i)
        for (size_t l = 0; l < p.n(); ++l)
            p.limb(i)[l] = rng.uniform(p.modulus(i).value());
    return p;
}

/// One parameter set with its context and KLSS relinearization key.
struct ParamSet
{
    ParamSet(size_t levels, size_t d_num, u64 seed)
        : params(CkksParams::test_params(256, levels, d_num)),
          ctx(params), keygen(ctx, seed), sk(keygen.secret_key()),
          klss_rlk(keygen.to_klss(keygen.relin_key(sk)))
    {
    }

    CkksParams params;
    CkksContext ctx;
    KeyGenerator keygen;
    SecretKey sk;
    KlssEvalKey klss_rlk;
};

struct Config
{
    ParamSet *set;
    size_t level;
    const char *engine;
};

struct Shard : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        set_a_ = new ParamSet(5, 2, 303);
        set_b_ = new ParamSet(4, 4, 404);
    }

    static void
    TearDownTestSuite()
    {
        delete set_b_;
        delete set_a_;
        set_a_ = nullptr;
        set_b_ = nullptr;
    }

    /// 21 (level, d_num, engine) configurations: 2 parameter sets ×
    /// {4, 3} levels × 3 GEMM engines — the fusion suite's sweep.
    static std::vector<Config>
    configs()
    {
        std::vector<Config> out;
        for (size_t level : {5u, 4u, 3u, 2u})
            for (const char *eng : {"scalar", "fp64_tcu", "int8_tcu"})
                out.push_back({set_a_, level, eng});
        for (size_t level : {4u, 3u, 1u})
            for (const char *eng : {"scalar", "fp64_tcu", "int8_tcu"})
                out.push_back({set_b_, level, eng});
        return out;
    }

    static ExecPolicy
    policy(const char *engine, size_t devices,
           gpusim::Interconnect ic = gpusim::Interconnect::nvlink)
    {
        ExecPolicy p = ExecPolicy::fixed(EngineRegistry::parse(engine));
        p.devices = devices;
        p.interconnect = ic;
        return p;
    }

    static ParamSet *set_a_;
    static ParamSet *set_b_;
};

ParamSet *Shard::set_a_ = nullptr;
ParamSet *Shard::set_b_ = nullptr;

/// Analytic fabric bytes of one sharded keyswitch at @p level: the
/// limb-partition formula the CommPlan must reproduce. Every
/// collective moves D·(D−1) shards across the fabric; shards are
/// ceil-partitions of the stage's axis.
struct AnalyticBytes
{
    double allgather = 0;
    double reducescatter = 0;
    double total() const { return allgather + reducescatter; }
};

AnalyticBytes
analytic_bytes(const CkksParams &params, size_t level, size_t devices)
{
    const double limb =
        static_cast<double>(params.n) * 8.0 *
        static_cast<double>(params.batch);
    const auto ceil_shard = [devices](size_t total) {
        return static_cast<double>((total + devices - 1) / devices);
    };
    const double fabric =
        static_cast<double>(devices) * static_cast<double>(devices - 1);
    AnalyticBytes b;
    const double src = ceil_shard(level + 1) * limb;
    const double digits =
        ceil_shard(params.beta(level)) *
        static_cast<double>(params.klss_alpha_prime()) * limb;
    b.allgather = fabric * (src + digits);
    b.reducescatter = 2 * fabric * ceil_shard(level + 1) * limb;
    return b;
}

// ---------------------------------------------------------------------
// Partition rule
// ---------------------------------------------------------------------

TEST(ShardPartition, CoversEveryIndexExactlyOnce)
{
    for (size_t total : {1u, 2u, 5u, 6u, 7u, 16u, 37u})
        for (size_t devices : {1u, 2u, 3u, 4u, 8u}) {
            SCOPED_TRACE(::testing::Message()
                         << "total=" << total << " devices=" << devices);
            std::vector<int> seen(total, 0);
            size_t sum = 0;
            for (size_t d = 0; d < devices; ++d) {
                const auto sr = shard::shard_range(total, devices, d);
                sum += sr.count;
                for (size_t i = sr.first; i < sr.first + sr.count; ++i)
                    seen[i] += 1;
            }
            EXPECT_EQ(sum, total);
            EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                                    [](int c) { return c == 1; }));
        }
}

TEST(ShardPartition, MatchesEvenPartitionHelper)
{
    // shard_range and the rns helper must never drift apart: the
    // functional mod_down loops use one, the cost model the other.
    for (size_t total : {6u, 9u, 16u})
        for (size_t devices : {2u, 4u, 5u}) {
            const auto groups = make_even_partition(total, devices);
            ASSERT_EQ(groups.size(), devices);
            for (size_t d = 0; d < devices; ++d) {
                const auto sr = shard::shard_range(total, devices, d);
                EXPECT_EQ(sr.first, groups[d].first);
                EXPECT_EQ(sr.count, groups[d].count);
            }
        }
}

// ---------------------------------------------------------------------
// Differential: sharded vs single-device vs reference
// ---------------------------------------------------------------------

TEST_F(Shard, ShardedKeyswitchBitIdenticalAcrossConfigs)
{
    const auto cfgs = configs();
    ASSERT_GE(cfgs.size(), 21u);
    for (const auto &cfg : cfgs) {
        const auto d2 = random_eval_poly(cfg.set->ctx, cfg.level,
                                         9000 + cfg.level);
        const auto ref =
            keyswitch_klss(d2, cfg.set->klss_rlk, cfg.set->ctx);
        for (size_t devices : {1u, 2u, 4u}) {
            SCOPED_TRACE(::testing::Message()
                         << cfg.engine << " d_num="
                         << cfg.set->params.d_num << " level="
                         << cfg.level << " devices=" << devices);
            const auto got = keyswitch_klss_pipeline(
                d2, cfg.set->klss_rlk, cfg.set->ctx,
                policy(cfg.engine, devices));
            EXPECT_TRUE(poly_eq(got.first, ref.first));
            EXPECT_TRUE(poly_eq(got.second, ref.second));
        }
    }
}

TEST_F(Shard, ShardedBitExactAcrossThreadCounts)
{
    const auto cfgs = configs();
    std::vector<std::pair<RnsPoly, RnsPoly>> refs;
    std::vector<RnsPoly> inputs;
    for (const auto &cfg : cfgs) {
        inputs.push_back(random_eval_poly(cfg.set->ctx, cfg.level,
                                          9100 + cfg.level));
        refs.push_back(keyswitch_klss(inputs.back(), cfg.set->klss_rlk,
                                      cfg.set->ctx));
    }
    for (size_t threads : {1u, 2u, 7u, 16u}) {
        ThreadPool::set_global_threads(threads);
        for (size_t devices : {1u, 2u, 4u})
            for (size_t i = 0; i < cfgs.size(); ++i) {
                const auto &cfg = cfgs[i];
                SCOPED_TRACE(::testing::Message()
                             << cfg.engine << " d_num="
                             << cfg.set->params.d_num << " level="
                             << cfg.level << " threads=" << threads
                             << " devices=" << devices);
                const auto got = keyswitch_klss_pipeline(
                    inputs[i], cfg.set->klss_rlk, cfg.set->ctx,
                    policy(cfg.engine, devices));
                EXPECT_TRUE(poly_eq(got.first, refs[i].first));
                EXPECT_TRUE(poly_eq(got.second, refs[i].second));
            }
    }
    ThreadPool::set_global_threads(0); // back to NEO_NUM_THREADS
}

TEST_F(Shard, ShardedFusedPipelineStaysBitIdentical)
{
    // Device sharding composes with element-wise fusion: both rewrite
    // loop structure only.
    auto &s = *set_a_;
    const size_t level = s.ctx.max_level();
    const auto d2 = random_eval_poly(s.ctx, level, 9200);
    const auto ref = keyswitch_klss(d2, s.klss_rlk, s.ctx);
    for (size_t devices : {2u, 4u}) {
        ExecPolicy p = policy("fp64_tcu", devices);
        p.fuse = true;
        const auto got =
            keyswitch_klss_pipeline(d2, s.klss_rlk, s.ctx, p);
        EXPECT_TRUE(poly_eq(got.first, ref.first));
        EXPECT_TRUE(poly_eq(got.second, ref.second));
    }
}

TEST_F(Shard, ModDownBitIdenticalUnderSharding)
{
    auto &s = *set_a_;
    const size_t level = s.ctx.max_level();
    Rng rng(9300);
    RnsPoly ext(s.ctx.n(),
                s.ctx.extended_mods(level), PolyForm::coeff);
    for (size_t i = 0; i < ext.limbs(); ++i)
        for (size_t l = 0; l < ext.n(); ++l)
            ext.limb(i)[l] = rng.uniform(ext.modulus(i).value());

    for (bool fuse : {false, true}) {
        const auto ref = ckks::mod_down(ext, level, s.ctx, fuse, 1);
        for (size_t devices : {2u, 3u, 4u}) {
            SCOPED_TRACE(::testing::Message()
                         << "fuse=" << fuse << " devices=" << devices);
            const auto got =
                ckks::mod_down(ext, level, s.ctx, fuse, devices);
            EXPECT_TRUE(poly_eq(got, ref));
        }
    }
}

// ---------------------------------------------------------------------
// Counters: modeled comm bytes equal the analytic partition formula
// ---------------------------------------------------------------------

TEST_F(Shard, CommCountersMatchAnalyticFormula)
{
    auto &s = *set_a_;
    const size_t level = s.ctx.max_level();
    const auto d2 = random_eval_poly(s.ctx, level, 9400);
    for (size_t devices : {2u, 4u}) {
        SCOPED_TRACE(::testing::Message() << "devices=" << devices);
        obs::Scope scope;
        (void)keyswitch_klss_pipeline(d2, s.klss_rlk, s.ctx,
                                      policy("fp64_tcu", devices));
        const auto vals = scope.registry().values();
        const auto get = [&vals](const char *k) {
            const auto it = vals.find(k);
            return it == vals.end() ? -1.0 : it->second;
        };
        const auto expect = analytic_bytes(s.params, level, devices);
        EXPECT_DOUBLE_EQ(get("comm.bytes.allgather"), expect.allgather);
        EXPECT_DOUBLE_EQ(get("comm.bytes.reducescatter"),
                         expect.reducescatter);
        EXPECT_DOUBLE_EQ(get("comm.bytes.total"), expect.total());
        EXPECT_GT(get("comm.modeled.s"), 0.0);
    }
}

TEST_F(Shard, SingleDeviceRecordsNoCommCounters)
{
    auto &s = *set_a_;
    const auto d2 =
        random_eval_poly(s.ctx, s.ctx.max_level(), 9500);
    obs::Scope scope;
    (void)keyswitch_klss_pipeline(d2, s.klss_rlk, s.ctx,
                                  policy("fp64_tcu", 1));
    for (const auto &[k, v] : scope.registry().values())
        EXPECT_NE(k.substr(0, 5), "comm.") << k << "=" << v;
}

TEST(ShardPlan, CommPlanMatchesAnalyticFormulaAcrossParams)
{
    // The plan's byte accounting against the closed form, across the
    // KLSS-capable paper sets, on both fabric shapes.
    for (char set : {'C', 'D', 'G'}) {
        const auto params = ckks::paper_set(set);
        for (size_t level :
             {params.max_level, params.max_level / 2, size_t{1}})
            for (size_t devices : {2u, 4u, 8u})
                for (auto ic : {gpusim::Interconnect::nvlink,
                                gpusim::Interconnect::pcie}) {
                    SCOPED_TRACE(::testing::Message()
                                 << "set=" << set << " level=" << level
                                 << " devices=" << devices);
                    const auto topo = gpusim::Topology::preset(
                        ic, devices);
                    const auto plan =
                        shard::comm_plan(params, level, topo);
                    const auto expect =
                        analytic_bytes(params, level, devices);
                    EXPECT_DOUBLE_EQ(plan.allgather_bytes(),
                                     expect.allgather);
                    EXPECT_DOUBLE_EQ(plan.reducescatter_bytes(),
                                     expect.reducescatter);
                    EXPECT_DOUBLE_EQ(plan.total_bytes(),
                                     expect.total());
                    EXPECT_GT(plan.serial_time_s(), 0.0);
                }
    }
}

TEST(ShardPlan, SingleDevicePlanIsFree)
{
    const auto params = ckks::paper_set('C');
    const auto plan = shard::comm_plan(
        params, params.max_level, gpusim::Topology::single());
    EXPECT_DOUBLE_EQ(plan.total_bytes(), 0.0);
    EXPECT_DOUBLE_EQ(plan.serial_time_s(), 0.0);
}

// ---------------------------------------------------------------------
// Cost model: attribution invariant and the crossover
// ---------------------------------------------------------------------

TEST(ShardModel, AttributionRowsSumToMakespan)
{
    const auto params = ckks::paper_set('C');
    for (size_t devices : {1u, 2u, 4u}) {
        model::ModelConfig cfg;
        cfg.devices = devices;
        const auto sc = shard::model_sharded_keyswitch(
            params, params.max_level, cfg);
        double sum = 0;
        for (const auto &row : sc.kernels)
            sum += row.modeled_s;
        EXPECT_NEAR(sum, sc.seconds, 1e-9 * sc.seconds)
            << "devices=" << devices;
        // Per-device rows exist and comm shows up only when sharded.
        EXPECT_EQ(sc.per_device.size(), devices);
        if (devices == 1) {
            EXPECT_DOUBLE_EQ(sc.comm_s, 0.0);
            EXPECT_TRUE(sc.links.empty());
        } else {
            EXPECT_GT(sc.comm_s, 0.0);
            EXPECT_EQ(sc.links.size(),
                      gpusim::Topology::nvlink(devices).num_links());
            for (const auto &lk : sc.links) {
                EXPECT_GT(lk.bytes, 0.0);
                EXPECT_GT(lk.utilization, 0.0);
                EXPECT_LE(lk.utilization, 1.0);
            }
        }
    }
}

TEST(ShardModel, NvlinkCrossoverExistsAtPaperScale)
{
    // ISSUE acceptance: at least one paper parameter set where the
    // sharded schedule on ≥2 NVLink devices beats single-device.
    bool crossover = false;
    char where = '?';
    // The KLSS-capable paper sets (the sharded pipeline is the KLSS
    // keyswitch; sets without α̃ have no key-digit structure to shard).
    for (char set : {'C', 'D', 'G'}) {
        const auto params = ckks::paper_set(set);
        model::ModelConfig cfg;
        cfg.devices = 2;
        cfg.interconnect = gpusim::Interconnect::nvlink;
        const auto sc = shard::model_sharded_keyswitch(
            params, params.max_level, cfg);
        EXPECT_GT(sc.seconds, 0.0);
        if (sc.seconds < sc.single_seconds) {
            crossover = true;
            where = set;
        }
    }
    EXPECT_TRUE(crossover);
    SCOPED_TRACE(::testing::Message() << "first win at set " << where);
}

TEST(ShardModel, PcieShardsSlowerThanNvlinkShards)
{
    // The crossover is a fabric property: the same shard plan priced
    // on the PCIe ring pays ≥ the NVLink fabric's collective bill.
    const auto params = ckks::paper_set('C');
    model::ModelConfig nv;
    nv.devices = 4;
    nv.interconnect = gpusim::Interconnect::nvlink;
    model::ModelConfig pc = nv;
    pc.interconnect = gpusim::Interconnect::pcie;
    const auto a = shard::model_sharded_keyswitch(
        params, params.max_level, nv);
    const auto b = shard::model_sharded_keyswitch(
        params, params.max_level, pc);
    EXPECT_LT(a.seconds, b.seconds);
    EXPECT_GT(b.comm_s, a.comm_s);
    // Same compute shards, same analytic bytes — only time differs.
    EXPECT_DOUBLE_EQ(a.plan.total_bytes(), b.plan.total_bytes());
}

TEST(ShardModel, DevicesOneDegeneratesToSingleSchedule)
{
    const auto params = ckks::paper_set('C');
    model::ModelConfig cfg;
    cfg.devices = 1;
    const auto sc = shard::model_sharded_keyswitch(
        params, params.max_level, cfg);
    // One device is *exactly* the single-device schedule — the same
    // run() figure every unsharded profile reports.
    EXPECT_GT(sc.seconds, 0.0);
    EXPECT_DOUBLE_EQ(sc.seconds, sc.single_seconds);
    EXPECT_DOUBLE_EQ(sc.speedup(), 1.0);
}

} // namespace
} // namespace neo
