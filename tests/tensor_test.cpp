#include <gtest/gtest.h>

#include "common/random.h"
#include "poly/matrix_ntt.h"
#include "rns/primes.h"
#include "tensor/bitslice.h"
#include "tensor/gemm.h"
#include "tensor/layout.h"

namespace neo {
namespace {

TEST(BitSlice, Fp64SplitMatchesPaperExamples)
{
    // §3.4: 36-bit operands, K = 16 -> keep A whole, slice B into
    // three 12-bit planes; 3 FP64 GEMMs total.
    SplitPlan p36 = choose_fp64_split(36, 36, 16);
    EXPECT_EQ(p36.products(), 3);
    EXPECT_EQ(p36.a_planes, 1);
    EXPECT_EQ(p36.b_planes, 3);
    EXPECT_LE(p36.a_plane_bits + p36.b_plane_bits + 4, 53);

    // 48-bit operands -> 2 x 2 = 4 GEMMs ("FP64 complexity of 4").
    SplitPlan p48 = choose_fp64_split(48, 48, 16);
    EXPECT_EQ(p48.products(), 4);
    EXPECT_EQ(p48.a_planes, 2);
    EXPECT_EQ(p48.b_planes, 2);
    EXPECT_LE(p48.a_plane_bits + p48.b_plane_bits + 4, 53);
}

TEST(BitSlice, Int8SplitMatchesPaperExamples)
{
    // §3.4: 36-bit -> 5 planes each side -> 25 GEMMs; 48-bit -> 36.
    EXPECT_EQ(choose_int8_split(36, 36, 16).products(), 25);
    EXPECT_EQ(choose_int8_split(48, 48, 16).products(), 36);
}

TEST(BitSlice, Fp64SplitAlwaysExact)
{
    for (int w : {30, 36, 42, 48, 54, 60, 64}) {
        for (size_t k : {4u, 8u, 16u, 36u}) {
            SplitPlan p = choose_fp64_split(w, w, k);
            int kbits = k <= 1 ? 0 : bit_size(k - 1);
            EXPECT_LE(p.a_plane_bits + p.b_plane_bits + kbits, 53)
                << "w=" << w << " k=" << k;
            EXPECT_GE(p.a_planes * p.a_plane_bits, w);
            EXPECT_GE(p.b_planes * p.b_plane_bits, w);
        }
    }
}

TEST(BitSlice, PlanesReconstructValue)
{
    Rng rng(1);
    std::vector<u64> in(32);
    for (auto &x : in)
        x = rng.next() & ((1ULL << 48) - 1);
    SplitPlan p = choose_fp64_split(48, 48, 16);
    std::vector<double> planes(static_cast<size_t>(p.a_planes) * 32);
    slice_to_f64(in.data(), 32, p.a_planes, p.a_plane_bits, planes.data());
    for (size_t i = 0; i < 32; ++i) {
        u64 v = 0;
        for (int pl = p.a_planes - 1; pl >= 0; --pl) {
            v <<= p.a_plane_bits;
            v += static_cast<u64>(planes[static_cast<size_t>(pl) * 32 + i]);
        }
        EXPECT_EQ(v, in[i]);
    }
}

class SlicedGemmTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SlicedGemmTest, Fp64PathBitExactAgainstScalar)
{
    const int bits = GetParam();
    Modulus q(generate_ntt_primes(bits, 1, 1 << 10)[0]);
    Rng rng(bits);
    const size_t m = 24, n = 16, k = 16;
    auto a = rng.uniform_vec(m * k, q.value());
    auto b = rng.uniform_vec(k * n, q.value());
    std::vector<u64> ref(m * n), got(m * n);
    scalar_mod_matmul(a.data(), b.data(), ref.data(), m, n, k, q);
    fp64_sliced_matmul(a.data(), b.data(), got.data(), m, n, k, q);
    EXPECT_EQ(got, ref);
}

TEST_P(SlicedGemmTest, Int8PathBitExactAgainstScalar)
{
    const int bits = GetParam();
    Modulus q(generate_ntt_primes(bits, 1, 1 << 10)[0]);
    Rng rng(bits + 100);
    const size_t m = 8, n = 8, k = 16;
    auto a = rng.uniform_vec(m * k, q.value());
    auto b = rng.uniform_vec(k * n, q.value());
    std::vector<u64> ref(m * n), got(m * n);
    scalar_mod_matmul(a.data(), b.data(), ref.data(), m, n, k, q);
    int8_sliced_matmul(a.data(), b.data(), got.data(), m, n, k, q);
    EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(WordSizes, SlicedGemmTest,
                         ::testing::Values(30, 36, 48, 60));

TEST(SlicedGemm, MaximalOperandsStayExact)
{
    // Adversarial case: all entries q-1, the largest possible values.
    Modulus q(generate_ntt_primes(48, 1, 1 << 10)[0]);
    const size_t m = 4, n = 4, k = 16;
    std::vector<u64> a(m * k, q.value() - 1), b(k * n, q.value() - 1);
    std::vector<u64> ref(m * n), got(m * n);
    scalar_mod_matmul(a.data(), b.data(), ref.data(), m, n, k, q);
    fp64_sliced_matmul(a.data(), b.data(), got.data(), m, n, k, q);
    EXPECT_EQ(got, ref);
    int8_sliced_matmul(a.data(), b.data(), got.data(), m, n, k, q);
    EXPECT_EQ(got, ref);
}

TEST(SlicedGemm, OddShapes)
{
    Modulus q(generate_ntt_primes(36, 1, 1 << 10)[0]);
    Rng rng(7);
    for (auto [m, n, k] : {std::tuple<size_t, size_t, size_t>{1, 1, 1},
                           {3, 5, 7},
                           {17, 9, 4},
                           {2, 33, 8}}) {
        auto a = rng.uniform_vec(m * k, q.value());
        auto b = rng.uniform_vec(k * n, q.value());
        std::vector<u64> ref(m * n), got(m * n);
        scalar_mod_matmul(a.data(), b.data(), ref.data(), m, n, k, q);
        fp64_sliced_matmul(a.data(), b.data(), got.data(), m, n, k, q);
        EXPECT_EQ(got, ref) << m << "x" << n << "x" << k;
    }
}

TEST(SlicedGemm, MatrixNttThroughFp64TcuMatchesScalar)
{
    // The paper's NTT-on-TCU: radix-16 NTT with all matmuls routed
    // through the FP64-sliced GEMM must equal the radix-2 reference.
    const size_t n = 1024;
    Modulus q(generate_ntt_primes(48, 1, n)[0]);
    NttTables t(n, q);
    MatrixNtt mntt(t, 16);
    Rng rng(11);
    auto a = rng.uniform_vec(n, q.value());
    auto ref = a;
    t.forward(ref.data());
    auto got = a;
    mntt.forward(got.data(), fp64_tcu_matmul());
    EXPECT_EQ(got, ref);
    mntt.inverse(got.data(), fp64_tcu_matmul());
    EXPECT_EQ(got, a);
}

TEST(SlicedGemm, MatrixNttThroughInt8TcuMatchesScalar)
{
    const size_t n = 256;
    Modulus q(generate_ntt_primes(36, 1, n)[0]);
    NttTables t(n, q);
    MatrixNtt mntt(t, 16);
    Rng rng(12);
    auto a = rng.uniform_vec(n, q.value());
    auto ref = a;
    t.forward(ref.data());
    auto got = a;
    mntt.forward(got.data(), int8_tcu_matmul());
    EXPECT_EQ(got, ref);
}

TEST(Layout, Reorder3dRoundTrip)
{
    const size_t d0 = 3, d1 = 4, d2 = 5;
    Rng rng(2);
    auto in = rng.uniform_vec(d0 * d1 * d2, 1000);
    std::vector<u64> mid(in.size()), back(in.size());
    reorder_3d_swap02(in.data(), d0, d1, d2, mid.data());
    // Element check: out[l][b][i] == in[i][b][l].
    for (size_t i = 0; i < d0; ++i)
        for (size_t b = 0; b < d1; ++b)
            for (size_t l = 0; l < d2; ++l)
                EXPECT_EQ(mid[(l * d1 + b) * d0 + i],
                          in[(i * d1 + b) * d2 + l]);
    reorder_3d_swap02(mid.data(), d2, d1, d0, back.data());
    EXPECT_EQ(back, in);
}

TEST(Layout, Reorder4dSwap03RoundTrip)
{
    const size_t d0 = 2, d1 = 3, d2 = 4, d3 = 5;
    Rng rng(3);
    auto in = rng.uniform_vec(d0 * d1 * d2 * d3, 1000);
    std::vector<u64> mid(in.size()), back(in.size());
    reorder_4d_swap03(in.data(), d0, d1, d2, d3, mid.data());
    reorder_4d_swap03(mid.data(), d3, d1, d2, d0, back.data());
    EXPECT_EQ(back, in);
}

TEST(Layout, Reorder4dReverseRoundTrip)
{
    const size_t d0 = 2, d1 = 3, d2 = 4, d3 = 5;
    Rng rng(4);
    auto in = rng.uniform_vec(d0 * d1 * d2 * d3, 1000);
    std::vector<u64> mid(in.size()), back(in.size());
    reorder_4d_reverse(in.data(), d0, d1, d2, d3, mid.data());
    reorder_4d_reverse(mid.data(), d3, d2, d1, d0, back.data());
    EXPECT_EQ(back, in);
}

} // namespace
} // namespace neo
