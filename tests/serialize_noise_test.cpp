#include <gtest/gtest.h>

#include <sstream>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/noise.h"
#include "ckks/serialize.h"
#include "common/random.h"

namespace neo::ckks {
namespace {

struct SnFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(128, 5, 2));
        ctx_ = new CkksContext(*params_);
        keygen_ = new KeyGenerator(*ctx_, 41);
        sk_ = new SecretKey(keygen_->secret_key());
        pk_ = new PublicKey(keygen_->public_key(*sk_));
        rlk_ = new EvalKey(keygen_->relin_key(*sk_));
    }

    static void
    TearDownTestSuite()
    {
        delete rlk_;
        delete pk_;
        delete sk_;
        delete keygen_;
        delete ctx_;
        delete params_;
    }

    static std::vector<Complex>
    slots(u64 seed)
    {
        Rng rng(seed);
        std::vector<Complex> z(ctx_->encoder().slot_count());
        for (auto &x : z)
            x = Complex(2 * rng.uniform_real() - 1, 0);
        return z;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static PublicKey *pk_;
    static EvalKey *rlk_;
};

CkksParams *SnFixture::params_ = nullptr;
CkksContext *SnFixture::ctx_ = nullptr;
KeyGenerator *SnFixture::keygen_ = nullptr;
SecretKey *SnFixture::sk_ = nullptr;
PublicKey *SnFixture::pk_ = nullptr;
EvalKey *SnFixture::rlk_ = nullptr;

TEST_F(SnFixture, PolyRoundTrip)
{
    Rng rng(1);
    RnsPoly p(ctx_->n(), ctx_->active_mods(3), PolyForm::eval);
    for (size_t i = 0; i < p.limbs(); ++i)
        for (size_t l = 0; l < p.n(); ++l)
            p.limb(i)[l] = rng.uniform(p.modulus(i).value());

    std::stringstream ss;
    save(ss, p);
    RnsPoly q = load_poly(ss);
    EXPECT_TRUE(q.same_shape(p));
    EXPECT_EQ(q.form(), p.form());
    EXPECT_TRUE(std::equal(p.data(), p.data() + p.limbs() * p.n(),
                           q.data()));
    EXPECT_NO_THROW(validate_against(*ctx_, q));
}

TEST_F(SnFixture, CiphertextRoundTripStillDecrypts)
{
    Encryptor enc(*ctx_);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    auto z = slots(2);
    Ciphertext ct = enc.encrypt(ctx_->encode(z, 5), *pk_);

    std::stringstream ss;
    save(ss, ct);
    Ciphertext back = load_ciphertext(ss);
    EXPECT_EQ(back.level, ct.level);
    EXPECT_DOUBLE_EQ(back.scale, ct.scale);
    auto got = dec.decrypt_decode(back);
    for (size_t i = 0; i < z.size(); ++i)
        EXPECT_LT(std::abs(got[i] - z[i]), 1e-5);
}

TEST_F(SnFixture, KeysRoundTripAndStillRelinearize)
{
    std::stringstream ks, es;
    save(ks, *sk_);
    save(es, *rlk_);
    SecretKey sk2 = load_secret_key(ks);
    EvalKeyBundle keys2;
    keys2.rlk = load_eval_key(es);
    EXPECT_EQ(sk2.coeffs, sk_->coeffs);

    Encryptor enc(*ctx_);
    Decryptor dec(*ctx_, sk2, *keygen_);
    Evaluator ev(*ctx_);
    auto a = slots(3);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    auto prod = ev.rescale(ev.mul(ca, ca, keys2));
    auto got = dec.decrypt_decode(prod);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(got[i] - a[i] * a[i]), 1e-4);
}

TEST_F(SnFixture, TamperedStreamsRejected)
{
    std::stringstream ss;
    save(ss, *sk_);
    std::string raw = ss.str();
    // Flip a secret coefficient to an out-of-range value.
    raw[raw.size() - 3] = 0x7f;
    std::stringstream bad(raw);
    EXPECT_THROW(load_secret_key(bad), std::invalid_argument);

    std::stringstream truncated(raw.substr(0, 16));
    EXPECT_THROW(load_secret_key(truncated), std::invalid_argument);

    std::stringstream wrong_magic(std::string("XXXX") + raw.substr(4));
    EXPECT_THROW(load_secret_key(wrong_magic), std::invalid_argument);
}

TEST_F(SnFixture, ValidateAgainstRejectsForeignModuli)
{
    std::vector<Modulus> fake = {Modulus(1000003),
                                 Modulus(1000033)};
    RnsPoly alien(ctx_->n(), fake);
    EXPECT_THROW(validate_against(*ctx_, alien), std::invalid_argument);
}

TEST_F(SnFixture, FreshCiphertextNoiseIsSmall)
{
    Encryptor enc(*ctx_);
    NoiseInspector probe(*ctx_, *sk_, *keygen_);
    auto z = slots(4);
    Ciphertext ct = enc.encrypt(ctx_->encode(z, 5), *pk_);
    // Fresh public-key noise: a few bits above the error width.
    double bits = probe.noise_bits(ct, z);
    EXPECT_LT(bits, 20.0);
    EXPECT_GT(probe.budget_bits(ct, z), 100.0);
}

TEST_F(SnFixture, NoiseGrowsThroughMultiplication)
{
    Encryptor enc(*ctx_);
    Evaluator ev(*ctx_);
    NoiseInspector probe(*ctx_, *sk_, *keygen_);
    auto a = slots(5);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    double fresh = probe.noise_bits(ca, a);

    std::vector<Complex> sq(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        sq[i] = a[i] * a[i];
    EvalKeyBundle keys;
    keys.rlk = *rlk_;
    auto prod = ev.mul(ca, ca, keys);
    double after = probe.noise_bits(prod, sq);
    EXPECT_GT(after, fresh);
    // Budget must shrink but stay positive.
    EXPECT_GT(probe.budget_bits(prod, sq), 0.0);
    EXPECT_LT(probe.budget_bits(prod, sq), probe.budget_bits(ca, a));
}

TEST_F(SnFixture, BothKeySwitchMethodsAddComparableNoise)
{
    EvalKeyBundle keys;
    keys.rlk = *rlk_;
    keys.klss_rlk = keygen_->to_klss(*rlk_);
    Encryptor enc(*ctx_);
    NoiseInspector probe(*ctx_, *sk_, *keygen_);
    auto a = slots(6);
    auto ca = enc.encrypt(ctx_->encode(a, 5), *pk_);
    std::vector<Complex> sq(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        sq[i] = a[i] * a[i];

    Evaluator ev_h(*ctx_, KeySwitchMethod::hybrid);
    Evaluator ev_k(*ctx_, KeySwitchMethod::klss);
    double nh = probe.noise_bits(ev_h.mul(ca, ca, keys), sq);
    double nk = probe.noise_bits(ev_k.mul(ca, ca, keys), sq);
    EXPECT_LT(std::abs(nh - nk), 4.0) << "hybrid " << nh << " vs klss "
                                      << nk;
}

TEST_F(SnFixture, SeededCiphertextExpandsAndDecrypts)
{
    Encryptor enc(*ctx_);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    auto z = slots(7);
    SeededCiphertext sct = enc.encrypt_symmetric_seeded(
        ctx_->encode(z, 5), *sk_, *keygen_, /*a_seed=*/0xfeedULL);
    EXPECT_EQ(sct.seed, 0xfeedULL);

    Ciphertext full = enc.expand(sct);
    auto got = dec.decrypt_decode(full);
    for (size_t i = 0; i < z.size(); ++i)
        EXPECT_LT(std::abs(got[i] - z[i]), 1e-5);

    // Expansion is deterministic: c1 identical across expansions.
    Ciphertext again = enc.expand(sct);
    EXPECT_TRUE(std::equal(full.c1.data(),
                           full.c1.data() +
                               full.c1.limbs() * full.c1.n(),
                           again.c1.data()));
}

TEST_F(SnFixture, SeededCiphertextHalvesTheBytes)
{
    Encryptor enc(*ctx_);
    auto z = slots(8);
    SeededCiphertext sct = enc.encrypt_symmetric_seeded(
        ctx_->encode(z, 5), *sk_, *keygen_, 1);
    Ciphertext full = enc.expand(sct);
    const size_t seeded_bytes =
        sct.c0.limbs() * sct.c0.n() * sizeof(u64) + sizeof(u64);
    const size_t full_bytes =
        2 * full.c0.limbs() * full.c0.n() * sizeof(u64);
    EXPECT_LT(seeded_bytes, full_bytes * 0.51);
}

} // namespace
} // namespace neo::ckks
