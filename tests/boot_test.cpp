#include <gtest/gtest.h>

#include <cmath>

#include "boot/bootstrapper.h"
#include "boot/factored_transform.h"
#include "ckks/encryptor.h"
#include "common/random.h"

namespace neo::boot {

using namespace ckks;

namespace {

double
max_err(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    double e = 0;
    for (size_t i = 0; i < a.size(); ++i)
        e = std::max(e, std::abs(a[i] - b[i]));
    return e;
}

// ---------------------------------------------------------------------
// LinearTransform
// ---------------------------------------------------------------------

struct LtFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(64, 5, 2));
        ctx_ = new CkksContext(*params_);
        keygen_ = new KeyGenerator(*ctx_, 3);
        sk_ = new SecretKey(keygen_->secret_key());
        pk_ = new PublicKey(keygen_->public_key(*sk_));
        std::vector<i64> steps;
        for (size_t s = 1; s < ctx_->encoder().slot_count(); ++s)
            steps.push_back(static_cast<i64>(s));
        keys_ = new EvalKeyBundle;
        keys_->galois = keygen_->galois_keys(*sk_, steps, true);
    }

    static void
    TearDownTestSuite()
    {
        delete keys_;
        delete pk_;
        delete sk_;
        delete keygen_;
        delete ctx_;
        delete params_;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static PublicKey *pk_;
    static EvalKeyBundle *keys_;
};

CkksParams *LtFixture::params_ = nullptr;
CkksContext *LtFixture::ctx_ = nullptr;
KeyGenerator *LtFixture::keygen_ = nullptr;
SecretKey *LtFixture::sk_ = nullptr;
PublicKey *LtFixture::pk_ = nullptr;
EvalKeyBundle *LtFixture::keys_ = nullptr;

TEST_F(LtFixture, DiagonalExtraction)
{
    const size_t s = 4;
    std::vector<Complex> m(s * s);
    for (size_t i = 0; i < s * s; ++i)
        m[i] = Complex(static_cast<double>(i), 0);
    LinearTransform lt(m, s);
    auto d1 = lt.diagonal(1);
    EXPECT_EQ(d1[0], m[0 * s + 1]);
    EXPECT_EQ(d1[3], m[3 * s + 0]); // wraps
}

TEST_F(LtFixture, NaiveAndBsgsMatchPlainReference)
{
    const size_t s = ctx_->encoder().slot_count();
    Rng rng(4);
    std::vector<Complex> m(s * s);
    for (auto &x : m)
        x = Complex(2 * rng.uniform_real() - 1, 2 * rng.uniform_real() - 1) *
            0.2;
    LinearTransform lt(m, s);

    std::vector<Complex> z(s);
    for (auto &x : z)
        x = Complex(2 * rng.uniform_real() - 1, 0);
    auto expected = lt.apply_plain(z);

    Encryptor enc(*ctx_);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    Ciphertext ct = enc.encrypt(ctx_->encode(z, 5), *pk_);

    auto naive = dec.decrypt_decode(lt.apply(ev, *ctx_, ct, *keys_));
    EXPECT_LT(max_err(naive, expected), 1e-3);
    auto bsgs = dec.decrypt_decode(lt.apply_bsgs(ev, *ctx_, ct, *keys_));
    EXPECT_LT(max_err(bsgs, expected), 1e-3);
    // Hoisted baby rotations: same result to noise precision.
    auto hoisted = dec.decrypt_decode(
        lt.apply_bsgs(ev, *ctx_, ct, *keys_, /*hoist=*/true));
    EXPECT_LT(max_err(hoisted, expected), 1e-3);
}

TEST_F(LtFixture, SparseDiagonalMatrixNeedsFewRotations)
{
    const size_t s = ctx_->encoder().slot_count();
    // Circulant shift-by-2 matrix: single non-zero diagonal.
    std::vector<Complex> m(s * s, Complex(0, 0));
    for (size_t i = 0; i < s; ++i)
        m[i * s + (i + 2) % s] = Complex(1, 0);
    LinearTransform lt(m, s);
    EXPECT_EQ(lt.required_rotations().size(), 1u);
    EXPECT_EQ(lt.required_rotations()[0], 2);
}

// ---------------------------------------------------------------------
// PolyEvaluator
// ---------------------------------------------------------------------

struct PolyFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(64, 9, 3));
        ctx_ = new CkksContext(*params_);
        keygen_ = new KeyGenerator(*ctx_, 5);
        sk_ = new SecretKey(keygen_->secret_key());
        pk_ = new PublicKey(keygen_->public_key(*sk_));
        keys_ = new EvalKeyBundle;
        keys_->rlk = keygen_->relin_key(*sk_);
    }

    static void
    TearDownTestSuite()
    {
        delete keys_;
        delete pk_;
        delete sk_;
        delete keygen_;
        delete ctx_;
        delete params_;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static PublicKey *pk_;
    static EvalKeyBundle *keys_;
};

CkksParams *PolyFixture::params_ = nullptr;
CkksContext *PolyFixture::ctx_ = nullptr;
KeyGenerator *PolyFixture::keygen_ = nullptr;
SecretKey *PolyFixture::sk_ = nullptr;
PublicKey *PolyFixture::pk_ = nullptr;
EvalKeyBundle *PolyFixture::keys_ = nullptr;

TEST_F(PolyFixture, PowerBasisMatchesPlainEvaluation)
{
    Encryptor enc(*ctx_);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    PolyEvaluator pe(*ctx_, ev, *keys_);

    Rng rng(6);
    const size_t slots = ctx_->encoder().slot_count();
    std::vector<Complex> z(slots);
    for (auto &x : z)
        x = Complex(2 * rng.uniform_real() - 1, 0);

    const double nominal =
        static_cast<double>(ctx_->q_basis()[1].value());
    Ciphertext ct =
        enc.encrypt(ctx_->encode(z, ctx_->max_level(), nominal), *pk_);

    // p(x) = 0.3 - 0.5x + 0.25x^3 + 0.1x^5.
    std::vector<double> coeffs = {0.3, -0.5, 0.0, 0.25, 0.0, 0.1};
    auto got = dec.decrypt_decode(pe.evaluate_power(ct, coeffs));
    for (size_t i = 0; i < slots; ++i) {
        double x = z[i].real();
        double want = 0.3 - 0.5 * x + 0.25 * x * x * x +
                      0.1 * std::pow(x, 5);
        EXPECT_NEAR(got[i].real(), want, 2e-3) << "slot " << i;
    }
}

TEST_F(PolyFixture, ChebyshevBasisMatchesPlainEvaluation)
{
    Encryptor enc(*ctx_);
    Decryptor dec(*ctx_, *sk_, *keygen_);
    Evaluator ev(*ctx_);
    PolyEvaluator pe(*ctx_, ev, *keys_);

    Rng rng(7);
    const size_t slots = ctx_->encoder().slot_count();
    std::vector<Complex> z(slots);
    for (auto &x : z)
        x = Complex(2 * rng.uniform_real() - 1, 0);

    const double nominal =
        static_cast<double>(ctx_->q_basis()[1].value());
    Ciphertext ct =
        enc.encrypt(ctx_->encode(z, ctx_->max_level(), nominal), *pk_);

    // Chebyshev fit of exp(x/2) at degree 7, evaluated homomorphically.
    auto f = [](double x, void *) { return std::exp(x / 2.0); };
    auto coeffs = PolyEvaluator::chebyshev_fit(+f, nullptr, 7);
    auto got = dec.decrypt_decode(pe.evaluate_chebyshev(ct, coeffs));
    for (size_t i = 0; i < slots; ++i) {
        double want = std::exp(z[i].real() / 2.0);
        EXPECT_NEAR(got[i].real(), want, 5e-3) << "slot " << i;
    }
}

TEST_F(PolyFixture, ChebyshevFitReproducesFunction)
{
    auto f = [](double x, void *) { return std::cos(3.0 * x); };
    auto c = PolyEvaluator::chebyshev_fit(+f, nullptr, 15);
    // Evaluate the series at a few points via the recurrence.
    for (double x : {-0.9, -0.3, 0.0, 0.5, 1.0}) {
        double t0 = 1, t1 = x, acc = c[0] + c[1] * x;
        for (size_t k = 2; k < c.size(); ++k) {
            double t2 = 2 * x * t1 - t0;
            acc += c[k] * t2;
            t0 = t1;
            t1 = t2;
        }
        EXPECT_NEAR(acc, std::cos(3.0 * x), 1e-9);
    }
}

// ---------------------------------------------------------------------
// Bootstrapping
// ---------------------------------------------------------------------

TEST(Bootstrap, RefreshesLevelAndPreservesMessage)
{
    CkksParams params = CkksParams::test_params(256, 14, 3);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 11);
    SecretKey sk = keygen.secret_key_sparse(8);
    PublicKey pk = keygen.public_key(sk);
    EvalKeyBundle keys = keygen.eval_key_bundle(
        sk, Bootstrapper::required_rotations(ctx), /*conjugate=*/true);
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);
    Bootstrapper boot(ctx, ev, keys);

    // Small messages: |m| << q0 keeps the sine linearisation sharp.
    Rng rng(13);
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> z(slots);
    for (auto &x : z)
        x = Complex(0.04 * (2 * rng.uniform_real() - 1), 0);

    Ciphertext ct = enc.encrypt(ctx.encode(z, /*level=*/0), pk);
    ASSERT_EQ(ct.level, 0u);

    Ciphertext fresh = boot.bootstrap(ct);
    EXPECT_GE(fresh.level, 2u) << "bootstrap must refresh levels";

    auto got = dec.decrypt_decode(fresh);
    EXPECT_LT(max_err(got, z), 2e-3);
}

TEST(FactoredEmbedding, StagesComposeToDenseEmbedding)
{
    // The butterfly factorization must reproduce the encoder's
    // canonical embedding exactly (plaintext check).
    for (size_t n : {8u, 64u, 256u}) {
        FactoredEmbedding fe(n, 2);
        Rng rng(n);
        std::vector<double> c(n);
        for (auto &x : c)
            x = 2 * rng.uniform_real() - 1;
        auto z = fe.apply_forward(fe.pack_base(c));
        // Reference: z_k = Σ c_i ζ^{5^k i}.
        u64 e = 1;
        double err = 0;
        for (size_t k = 0; k < n / 2; ++k) {
            Complex want(0, 0);
            for (size_t i = 0; i < n; ++i) {
                double th = M_PI * static_cast<double>((e * i) % (2 * n)) /
                            static_cast<double>(n);
                want += c[i] * Complex(std::cos(th), std::sin(th));
            }
            err = std::max(err, std::abs(want - z[k]));
            e = (e * 5) % (2 * n);
        }
        EXPECT_LT(err, 1e-9) << "n=" << n;
        // Inverse stages undo the forward ones.
        auto back = fe.apply_inverse(z);
        auto base = fe.pack_base(c);
        double rt = 0;
        for (size_t k = 0; k < n / 2; ++k)
            rt = std::max(rt, std::abs(back[k] - base[k]));
        EXPECT_LT(rt, 1e-9);
    }
}

TEST(FactoredEmbedding, StagesAreSparse)
{
    FactoredEmbedding fe(256, 3); // 7 levels in 3 groups
    ASSERT_EQ(fe.groups(), 3u);
    for (const auto &stage : fe.forward()) {
        // Grouping ≤3 butterfly levels composes offsets from
        // {0,±D1}+{0,±D2}+{0,±D3}: at most 27 diagonals, far below the
        // 128 of the dense transform.
        EXPECT_LE(stage.required_rotations().size() + 1, 27u);
        EXPECT_LT(stage.required_rotations().size(), 127u);
    }
    EXPECT_THROW(FactoredEmbedding(256, 9), std::invalid_argument);
    EXPECT_THROW(FactoredEmbedding(6, 1), std::invalid_argument);
}

TEST(Bootstrap, FactoredTransformsRefreshAndPreserve)
{
    CkksParams params = CkksParams::test_params(256, 17, 3);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 19);
    SecretKey sk = keygen.secret_key_sparse(8);
    PublicKey pk = keygen.public_key(sk);
    BootstrapOptions opts;
    opts.factored_groups = 2; // multi-stage CtS/StC
    EvalKeyBundle keys = keygen.eval_key_bundle(
        sk, Bootstrapper::required_rotations(ctx, opts), true);
    Encryptor enc(ctx);
    Decryptor dec(ctx, sk, keygen);
    Evaluator ev(ctx);
    Bootstrapper boot(ctx, ev, keys, opts);

    Rng rng(23);
    const size_t slots = ctx.encoder().slot_count();
    std::vector<Complex> z(slots);
    for (auto &x : z)
        x = Complex(0.04 * (2 * rng.uniform_real() - 1), 0);
    Ciphertext ct = enc.encrypt(ctx.encode(z, 0), pk);
    Ciphertext fresh = boot.bootstrap(ct);
    EXPECT_GE(fresh.level, 1u);
    auto got = dec.decrypt_decode(fresh);
    EXPECT_LT(max_err(got, z), 3e-3);
}

TEST(Bootstrap, SecretKeySparseHammingWeight)
{
    CkksParams params = CkksParams::test_params(256, 5, 2);
    CkksContext ctx(params);
    KeyGenerator keygen(ctx, 3);
    SecretKey sk = keygen.secret_key_sparse(8);
    int weight = 0;
    for (i64 c : sk.coeffs) {
        EXPECT_TRUE(c == -1 || c == 0 || c == 1);
        weight += (c != 0);
    }
    EXPECT_EQ(weight, 8);
}

} // namespace
} // namespace neo::boot
