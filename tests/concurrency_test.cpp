/**
 * @file
 * Concurrency stress suite (ctest label `concurrency`).
 *
 * Hammers every process-wide shared-state module from NTHREADS threads
 * at once. Under a plain build these tests check the functional
 * contracts (stable references, exact merge totals, generation
 * monotonicity); their real value is under `-DNEO_SANITIZE=ON` with
 * ThreadSanitizer, where any locking hole in the annotated modules
 * becomes a hard failure. Together with the clang `-Wthread-safety`
 * CI leg this gives both static and dynamic coverage of the same
 * invariants.
 *
 * Every test joins all threads before asserting, so failures are
 * deterministic even though the interleavings are not.
 */
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/context.h"
#include "ckks/ks_precomp.h"
#include "ckks/params.h"
#include "common/static_operand.h"
#include "common/types.h"
#include "obs/obs.h"
#include "tensor/plane_cache.h"

using namespace neo;
using namespace neo::ckks;

namespace {

constexpr int NTHREADS = 16;

/// Run @p fn on NTHREADS threads, all released at once, and join.
template <typename Fn>
void
hammer(Fn fn)
{
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(NTHREADS);
    for (int t = 0; t < NTHREADS; ++t)
        pool.emplace_back([&, t] {
            ready.fetch_add(1);
            while (!go.load())
                std::this_thread::yield();
            fn(t);
        });
    while (ready.load() != NTHREADS)
        std::this_thread::yield();
    go.store(true);
    for (auto &th : pool)
        th.join();
}

} // namespace

// ---------------------------------------------------------------------
// StaticOperands: pin / unpin / generation races
// ---------------------------------------------------------------------

TEST(Concurrency, StaticOperandPinUnpinRace)
{
    auto &reg = StaticOperands::instance();

    // One private buffer per thread: pin/unpin churn must never
    // corrupt the registry or hand out a stale generation.
    std::vector<std::vector<u64>> bufs(NTHREADS);
    for (auto &b : bufs)
        b.assign(256, 0x1234'5678'9abc'def0ull);

    // A shared buffer pinned for the whole test: its generation must
    // stay constant no matter how much churn happens around it.
    std::vector<u64> shared(128, 7);
    StaticPin shared_pin(shared.data(), shared.size() * sizeof(u64));
    const u64 shared_gen = reg.generation(shared.data());
    ASSERT_NE(shared_gen, 0u);

    hammer([&](int t) {
        u64 last = 0;
        for (int i = 0; i < 200; ++i) {
            u64 g = reg.pin(bufs[t].data(),
                            bufs[t].size() * sizeof(u64));
            EXPECT_GT(g, last); // generations are monotone
            last = g;
            // Interior pointers resolve to the enclosing pin.
            EXPECT_EQ(reg.generation(bufs[t].data() + 17), g);
            // The concurrently churned registry still resolves the
            // long-lived pin correctly.
            EXPECT_EQ(reg.generation(shared.data() + (i % 128)),
                      shared_gen);
            reg.unpin(bufs[t].data());
            EXPECT_EQ(reg.generation(bufs[t].data()), 0u);
        }
    });

    EXPECT_EQ(reg.generation(shared.data()), shared_gen);
}

// ---------------------------------------------------------------------
// PlaneCache: concurrent lookups against pinned operands
// ---------------------------------------------------------------------

TEST(Concurrency, PlaneCacheConcurrentLookups)
{
    auto &cache = PlaneCache::global();
    cache.clear();

    // A handful of pinned operands shared by all threads; every thread
    // asks for the same derived planes, so the cache must build each
    // entry exactly once semantically and serve identical storage.
    constexpr int NOPS = 4;
    std::vector<std::vector<u64>> ops(NOPS);
    std::vector<StaticPin> pins;
    for (int o = 0; o < NOPS; ++o) {
        ops[o].resize(512);
        for (size_t i = 0; i < ops[o].size(); ++i)
            ops[o][i] = (u64(o + 1) << 40) ^ (u64(i) * 0x9e3779b97f4a7c15ull);
        pins.emplace_back(ops[o].data(), ops[o].size() * sizeof(u64));
    }

    SplitPlan plan;
    plan.a_planes = 4;
    plan.a_plane_bits = 16;
    plan.b_planes = 4;
    plan.b_plane_bits = 16;

    std::vector<PlaneCache::F64Ptr> f64_seen(NTHREADS);
    std::vector<PlaneCache::Pow2Ptr> pow2_seen(NTHREADS);

    hammer([&](int t) {
        for (int i = 0; i < 100; ++i) {
            const auto &op = ops[(t + i) % NOPS];
            auto f = cache.f64_planes(op.data(), op.size(), 4, 16);
            ASSERT_NE(f, nullptr);
            auto s = cache.i32_planes(op.data(), op.size(), 8, 8);
            ASSERT_NE(s, nullptr);
            int w = cache.width_bits(op.data(), op.size());
            EXPECT_GT(w, 0);
            auto p2 = cache.pow2(plan, 0xffff'ffff'0000'0001ull);
            ASSERT_NE(p2, nullptr);
            if (i == 0 && (t + i) % NOPS == 0) {
                f64_seen[t] = f;
                pow2_seen[t] = p2;
            }
        }
    });

    // All threads that sampled operand 0 must agree on the bytes.
    const PlaneCache::F64Ptr *first = nullptr;
    for (const auto &f : f64_seen) {
        if (!f)
            continue;
        if (first == nullptr) {
            first = &f;
            continue;
        }
        ASSERT_EQ(f->size(), (*first)->size());
        EXPECT_EQ(std::memcmp(f->data(), (*first)->data(),
                              f->size() * sizeof(double)),
                  0);
    }
    cache.clear();
}

// ---------------------------------------------------------------------
// KeySwitchPrecomp: lazy per-level build under contention
// ---------------------------------------------------------------------

TEST(Concurrency, KeySwitchPrecompLazyBuildRace)
{
    CkksParams params = CkksParams::test_params(64, 6, 2);
    CkksContext ctx(params);
    const KeySwitchPrecomp &pre = ctx.precomp();
    const size_t nlevels = ctx.max_level() + 1;

    // level() promises a stable reference: the address every thread
    // sees for a given level must be identical, even when 16 threads
    // race to trigger the first (lazy) build.
    std::vector<std::atomic<const KeySwitchPrecomp::Level *>> seen(nlevels);
    for (auto &s : seen)
        s.store(nullptr);

    hammer([&](int t) {
        for (int i = 0; i < 50; ++i) {
            size_t l = (t + i) % nlevels;
            const auto &lv = pre.level(l);
            EXPECT_EQ(lv.active.size(), l + 1);
            const KeySwitchPrecomp::Level *expect = nullptr;
            if (!seen[l].compare_exchange_strong(expect, &lv))
                EXPECT_EQ(expect, &lv);
        }
    });
}

// ---------------------------------------------------------------------
// obs::Registry: concurrent writers + merge_from
// ---------------------------------------------------------------------

TEST(Concurrency, RegistrySharedWritersExactTotals)
{
    obs::Registry reg;
    constexpr int ITERS = 500;

    hammer([&](int t) {
        for (int i = 0; i < ITERS; ++i) {
            reg.add("stress.ops");
            reg.add_value("stress.bytes", 8.0);
            reg.observe("stress.lat_us", double(t * ITERS + i));
            reg.set_gauge("stress.last_thread", double(t));
            reg.add_gauge("stress.inflight", (i % 2 == 0) ? 1.0 : -1.0);
            // Concurrent reads while writers are active.
            (void)reg.counter("stress.ops");
        }
    });

    EXPECT_EQ(reg.counter("stress.ops"), u64(NTHREADS) * ITERS);
}

TEST(Concurrency, RegistryMergeFromShards)
{
    // The per-shard pattern neo/shard.cpp uses: each worker owns a
    // private registry, the root merges them. Merging from all threads
    // into one root while the shards are still being written elsewhere
    // is not the contract; merge-after-join totals must be exact.
    std::vector<obs::Registry> shards(NTHREADS);
    constexpr int ITERS = 300;

    hammer([&](int t) {
        for (int i = 0; i < ITERS; ++i) {
            shards[t].add("shard.ops");
            shards[t].observe("shard.lat_us", double(i));
        }
    });

    obs::Registry root;
    // merge_from locks both registries; interleave merges from
    // several threads to exercise that path too (each shard is merged
    // exactly once).
    std::atomic<int> next{0};
    hammer([&](int) {
        for (int s; (s = next.fetch_add(1)) < NTHREADS;)
            root.merge_from(shards[s]);
    });

    EXPECT_EQ(root.counter("shard.ops"), u64(NTHREADS) * ITERS);
}
