/**
 * Determinism suite for the parallel execution engine.
 *
 * The repo's strongest invariant is bit-exactness: the Neo pipeline
 * must equal the reference keyswitch_klss to the last bit. The thread
 * pool is only admissible if that invariant survives every thread
 * count, so this suite runs the full pipeline (scalar and FP64-TCU
 * engines) under NEO_NUM_THREADS ∈ {1, 2, 7, 16} and requires all
 * outputs identical to each other and to the sequential reference —
 * plus direct unit tests of the parallel_for contract itself.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "ckks/keygen.h"
#include "ckks/keyswitch.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "neo/pipeline.h"
#include "rns/primes.h"
#include "tensor/gemm.h"

namespace neo {
namespace {

using namespace ckks;

/// Point the global pool at @p n executors through the same
/// environment knob users have, verifying the env parsing on the way.
void
use_threads(size_t n)
{
    ::setenv("NEO_NUM_THREADS", std::to_string(n).c_str(), 1);
    ThreadPool::set_global_threads(0); // 0 = re-read NEO_NUM_THREADS
    ASSERT_EQ(ThreadPool::global().threads(), n);
}

const size_t kThreadCounts[] = {1, 2, 7, 16};

// ---------------------------------------------------------------------
// parallel_for contract.
// ---------------------------------------------------------------------

TEST(ThreadPool, EnvVariableControlsThreadCount)
{
    ::setenv("NEO_NUM_THREADS", "7", 1);
    EXPECT_EQ(ThreadPool::env_threads(), 7u);
    ::setenv("NEO_NUM_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::env_threads(), 1u); // falls back to hardware
    ::setenv("NEO_NUM_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::env_threads(), 1u);
    ::unsetenv("NEO_NUM_THREADS");
    EXPECT_GE(ThreadPool::env_threads(), 1u);
}

TEST(ThreadPool, ChunksTileTheRangeExactlyOnce)
{
    for (size_t tc : kThreadCounts) {
        ThreadPool pool(tc);
        for (size_t range : {0ul, 1ul, 5ul, 64ul, 1000ul, 4097ul}) {
            std::vector<std::atomic<int>> hits(range);
            for (auto &h : hits)
                h.store(0);
            pool.parallel_for(0, range, 3, [&](size_t b, size_t e) {
                ASSERT_LE(b, e);
                for (size_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (size_t i = 0; i < range; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "threads=" << tc << " range=" << range
                    << " index=" << i;
        }
    }
}

TEST(ThreadPool, NestedParallelForRunsInlineAndCompletes)
{
    ThreadPool pool(4);
    constexpr size_t kOuter = 32, kInner = 100;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    for (auto &h : hits)
        h.store(0);
    pool.parallel_for(0, kOuter, 1, [&](size_t ob, size_t oe) {
        for (size_t o = ob; o < oe; ++o) {
            // Inner call must not re-enter the pool (deadlock) and
            // must still cover its whole range.
            pool.parallel_for(0, kInner, 1, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i)
                    hits[o * kInner + i].fetch_add(1);
            });
        }
    });
    for (auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, BackToBackLoopsReuseWorkers)
{
    ThreadPool pool(7);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallel_for(0, 997, 10, [&](size_t b, size_t e) {
            long s = 0;
            for (size_t i = b; i < e; ++i)
                s += static_cast<long>(i);
            total.fetch_add(s);
        });
    }
    EXPECT_EQ(total.load(), 50L * (996L * 997L / 2));
}

// ---------------------------------------------------------------------
// Kernel-level determinism: identical bits for every thread count.
// ---------------------------------------------------------------------

TEST(ParallelDeterminism, Fp64GemmBitIdenticalAcrossThreadCounts)
{
    Modulus q(generate_ntt_primes(48, 1, 1 << 10)[0]);
    const size_t m = 512, n = 16, k = 16;
    Rng rng(11);
    auto a = rng.uniform_vec(m * k, q.value());
    auto b = rng.uniform_vec(k * n, q.value());

    use_threads(1);
    std::vector<u64> ref(m * n);
    fp64_sliced_matmul(a.data(), b.data(), ref.data(), m, n, k, q);

    for (size_t tc : kThreadCounts) {
        use_threads(tc);
        std::vector<u64> got(m * n);
        fp64_sliced_matmul(a.data(), b.data(), got.data(), m, n, k, q);
        EXPECT_EQ(got, ref) << "threads=" << tc;
    }
    use_threads(1);
}

TEST(ParallelDeterminism, BatchNttBitIdenticalAcrossThreadCounts)
{
    const size_t n = 1 << 13;
    Modulus q(generate_ntt_primes(48, 1, n)[0]);
    NttTables tables(n, q);
    Rng rng(12);
    auto input = rng.uniform_vec(n, q.value());

    use_threads(1);
    auto ref = input;
    tables.forward(ref.data());

    for (size_t tc : kThreadCounts) {
        use_threads(tc);
        auto got = input;
        tables.forward(got.data());
        EXPECT_EQ(got, ref) << "threads=" << tc;
        tables.inverse(got.data());
        EXPECT_EQ(got, input) << "roundtrip threads=" << tc;
    }
    use_threads(1);
}

// ---------------------------------------------------------------------
// Pipeline determinism: the tentpole guarantee.
// ---------------------------------------------------------------------

struct ParallelPipelineFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::test_params(256, 5, 2));
        ctx_ = new CkksContext(*params_);
        keygen_ = new KeyGenerator(*ctx_, 17);
        sk_ = new SecretKey(keygen_->secret_key());
        rlk_ = new EvalKey(keygen_->relin_key(*sk_));
        klss_rlk_ = new KlssEvalKey(keygen_->to_klss(*rlk_));
    }

    static void
    TearDownTestSuite()
    {
        delete klss_rlk_;
        delete rlk_;
        delete sk_;
        delete keygen_;
        delete ctx_;
        delete params_;
    }

    static RnsPoly
    random_eval_poly(size_t level, u64 seed)
    {
        Rng rng(seed);
        RnsPoly p(ctx_->n(), ctx_->active_mods(level), PolyForm::eval);
        for (size_t i = 0; i < p.limbs(); ++i)
            for (size_t l = 0; l < p.n(); ++l)
                p.limb(i)[l] = rng.uniform(p.modulus(i).value());
        return p;
    }

    /// Run the pipeline under every thread count and assert the
    /// outputs are bit-identical to each other and to the sequential
    /// reference keyswitch.
    static void
    check_engine(EngineId engine, const char *label)
    {
        const ExecPolicy policy = ExecPolicy::fixed(engine);
        RnsPoly d2 = random_eval_poly(5, 42);

        use_threads(1);
        auto [r0, r1] = keyswitch_klss(d2, *klss_rlk_, *ctx_);
        auto [s0, s1] =
            keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_, policy);
        const size_t count0 = r0.limbs() * r0.n();
        const size_t count1 = r1.limbs() * r1.n();
        ASSERT_TRUE(std::equal(r0.data(), r0.data() + count0, s0.data()))
            << label << " single-thread pipeline != reference";
        ASSERT_TRUE(std::equal(r1.data(), r1.data() + count1, s1.data()))
            << label << " single-thread pipeline != reference";

        for (size_t tc : kThreadCounts) {
            use_threads(tc);
            auto [p0, p1] =
                keyswitch_klss_pipeline(d2, *klss_rlk_, *ctx_, policy);
            EXPECT_TRUE(
                std::equal(s0.data(), s0.data() + count0, p0.data()))
                << label << " c0 differs at threads=" << tc;
            EXPECT_TRUE(
                std::equal(s1.data(), s1.data() + count1, p1.data()))
                << label << " c1 differs at threads=" << tc;
            EXPECT_TRUE(
                std::equal(r0.data(), r0.data() + count0, p0.data()))
                << label << " c0 != reference at threads=" << tc;
        }
        use_threads(1);
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static EvalKey *rlk_;
    static KlssEvalKey *klss_rlk_;
};

CkksParams *ParallelPipelineFixture::params_ = nullptr;
CkksContext *ParallelPipelineFixture::ctx_ = nullptr;
KeyGenerator *ParallelPipelineFixture::keygen_ = nullptr;
SecretKey *ParallelPipelineFixture::sk_ = nullptr;
EvalKey *ParallelPipelineFixture::rlk_ = nullptr;
KlssEvalKey *ParallelPipelineFixture::klss_rlk_ = nullptr;

TEST_F(ParallelPipelineFixture, ScalarEngineDeterministicAcrossThreads)
{
    check_engine(EngineId::scalar, "scalar");
}

TEST_F(ParallelPipelineFixture, Fp64TcuEngineDeterministicAcrossThreads)
{
    check_engine(EngineId::fp64_tcu, "fp64_tcu");
}

} // namespace
} // namespace neo
